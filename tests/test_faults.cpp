// Chaos suite for the deterministic fault-injection subsystem: seed-swept
// runs of the full delibak stack under frame loss, OSD crash/restart, and
// QDMA descriptor errors. Every run must end with all submitted I/Os
// completed-or-errored, read-back matching a shadow model, and a quiescent
// pipeline (no I/O silently swallowed by an injected fault). Also: the EC
// degraded-read property (every subset of <= m shards down decodes to the
// original; > m down returns an error Status, never garbage), write
// re-issue to the new primary after a CRUSH reweight, and bit-exact replay
// of a (seed, plan) pair.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/framework.hpp"
#include "fpga/qdma.hpp"
#include "rados/client.hpp"
#include "rados/cluster.hpp"
#include "workload/fio.hpp"

namespace dk {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.below(256));
  return v;
}

/// CI override: the chaos job exports DK_CHAOS_SEED (date-derived) so every
/// nightly run explores a fresh slice of the seed space; local runs default
/// to a fixed base so failures reproduce out of the box.
std::uint64_t base_seed() {
  if (const char* env = std::getenv("DK_CHAOS_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 1;
}

enum class FaultKind { frame_loss, osd_crash, qdma_error };

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::frame_loss: return "frame-loss";
    case FaultKind::osd_crash: return "osd-crash";
    case FaultKind::qdma_error: return "qdma-error";
  }
  return "?";
}

/// One adverse schedule per fault kind, scaled to the ~2-10 ms sim-time of
/// a 300-op qd-8 run. Crash plans keep the OSD *in* (mark_out_after < 0) so
/// placement is stable across the restart; the reweight path has its own
/// focused test below.
sim::FaultPlan plan_for(FaultKind kind, std::uint64_t seed) {
  sim::FaultPlan plan;
  plan.seed = seed;
  switch (kind) {
    case FaultKind::frame_loss: {
      sim::LinkFaultWindow w;
      w.start = us(100);
      w.end = ms(10);
      w.drop_prob = 0.015;
      w.extra_delay = us(3);
      plan.links.push_back(w);
      break;
    }
    case FaultKind::osd_crash: {
      sim::OsdCrashEvent ev;
      ev.osd = static_cast<int>(seed % 32);
      ev.crash_at = us(300);
      ev.restart_at = ms(6);
      ev.mark_out_after = -1;
      plan.osd_crashes.push_back(ev);
      break;
    }
    case FaultKind::qdma_error: {
      sim::QdmaFaultWindow w;
      w.start = 0;
      w.end = ms(10);
      w.fetch_error_prob = 0.02;
      w.completion_error_prob = 0.02;
      plan.qdma.push_back(w);
      break;
    }
  }
  return plan;
}

struct ChaosOutcome {
  std::uint64_t submitted = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t errored = 0;
  std::uint64_t verify_mismatches = 0;
  std::uint64_t leaks = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t degraded_reads = 0;
  std::uint64_t qdma_retries = 0;
  std::uint64_t checksum_failures = 0;  // integrity runs: detections
  std::uint64_t read_repairs = 0;
  std::uint64_t torn_replayed = 0;
  std::uint64_t journal_trims = 0;      // blockstore runs: trim policy ran
  std::uint64_t journal_occupancy = 0;  // cluster-wide, at drain
  std::uint64_t scrub_bytes = 0;        // background runs: paced deep scrub
  std::uint64_t backfill_bytes = 0;     // background runs: paced recovery
  std::uint64_t throttle_waits = 0;
  Nanos ttfr = 0;                       // time-to-full-redundancy
  sim::FaultStats faults;
};

/// Closed-loop chaos driver over the full delibak stack: random 4 kB reads
/// and writes against a shadow model (offset -> expected fill, with writes
/// whose outcome errored marked uncertain), then — after every fault window
/// has closed — a full read-back verification of all certain offsets.
ChaosOutcome chaos_run_with(const core::FrameworkConfig& cfg,
                            std::uint64_t seed) {
  sim::Simulator sim;
  core::Framework fw(sim, cfg);

  constexpr std::uint64_t kBlock = 4096;
  constexpr unsigned kOps = 300;
  constexpr unsigned kDepth = 8;
  const std::uint64_t blocks = cfg.image_size / kBlock;

  struct Shadow {
    std::uint64_t fill = 0;
    bool certain = false;  // last write known applied everywhere
  };
  std::map<std::uint64_t, Shadow> shadow;
  std::set<std::uint64_t> busy;  // offsets with an op in flight
  Rng rng(seed ^ 0xdecafULL);
  ChaosOutcome out;
  unsigned inflight = 0;
  std::uint64_t next_fill = seed * 1000 + 1;

  // A read target must already exist in the shadow and not be racing
  // another op on the same offset (conflicting concurrent writes would make
  // the expected content ambiguous).
  auto pick_read_offset = [&]() -> std::optional<std::uint64_t> {
    if (shadow.empty()) return std::nullopt;
    auto it = shadow.lower_bound(rng.below(blocks) * kBlock);
    for (std::size_t i = 0; i < shadow.size(); ++i, ++it) {
      if (it == shadow.end()) it = shadow.begin();
      if (busy.count(it->first) == 0) return it->first;
    }
    return std::nullopt;
  };

  std::function<void()> pump = [&] {
    while (inflight < kDepth && out.submitted < kOps) {
      const bool want_read = !shadow.empty() && rng.chance(0.4);
      std::optional<std::uint64_t> roff;
      if (want_read) roff = pick_read_offset();
      if (roff) {
        const std::uint64_t off = *roff;
        busy.insert(off);
        ++inflight;
        ++out.submitted;
        fw.read(static_cast<unsigned>(out.submitted % 3), off, kBlock,
                [&, off](Result<std::vector<std::uint8_t>> r) {
                  if (r.ok()) {
                    ++out.completed_ok;
                    const Shadow& sh = shadow[off];
                    if (sh.certain && *r != pattern(kBlock, sh.fill))
                      ++out.verify_mismatches;
                  } else {
                    ++out.errored;
                  }
                  busy.erase(off);
                  --inflight;
                  pump();
                });
        continue;
      }
      std::uint64_t off = 0;
      bool found = false;
      for (int attempt = 0; attempt < 16 && !found; ++attempt) {
        off = rng.below(blocks) * kBlock;
        found = busy.count(off) == 0;
      }
      if (!found) return;  // re-pumped by the next completion
      const std::uint64_t fill = next_fill++;
      shadow[off] = Shadow{fill, false};
      busy.insert(off);
      ++inflight;
      ++out.submitted;
      fw.write(static_cast<unsigned>(out.submitted % 3), off,
               pattern(kBlock, fill), [&, off](std::int32_t res) {
                 if (res >= 0) {
                   shadow[off].certain = true;
                   ++out.completed_ok;
                 } else {
                   ++out.errored;
                 }
                 busy.erase(off);
                 --inflight;
                 pump();
               });
    }
  };

  pump();
  sim.run();
  // Past every fault window (links/qdma end at 10 ms, restart at 6 ms), so
  // verification runs against a healthy stack.
  if (sim.now() < ms(15)) sim.run_until(ms(15));

  for (const auto& [off, sh] : shadow) {
    if (!sh.certain) continue;  // errored write: content is undefined
    bool done = false;
    fw.read(0, off, kBlock, [&](Result<std::vector<std::uint8_t>> r) {
      done = true;
      if (!r.ok() || *r != pattern(kBlock, sh.fill)) ++out.verify_mismatches;
    });
    sim.run();
    EXPECT_TRUE(done) << "verification read never completed @" << off;
  }

  out.leaks = fw.validator().verify_quiescent();
  out.retries = fw.rados_client().retries();
  out.timeouts = fw.rados_client().timeouts();
  out.degraded_reads = fw.rados_client().degraded_reads();
  if (const Counter* c = fw.metrics().find_counter("io.retries.qdma"))
    out.qdma_retries = c->value();
  // Client OSD-side detections + framework DMA detections share one counter.
  if (const Counter* c = fw.metrics().find_counter("integrity.checksum_failures"))
    out.checksum_failures = c->value();
  out.read_repairs = fw.rados_client().read_repairs();
  out.torn_replayed = fw.cluster().torn_writes_replayed();
  if (const Counter* c = fw.metrics().find_counter("blockstore.journal.trims"))
    out.journal_trims = c->value();
  if (const Gauge* g = fw.metrics().find_gauge("blockstore.journal.occupancy"))
    out.journal_occupancy = static_cast<std::uint64_t>(g->value());
  if (rados::BackgroundScheduler* bg = fw.background()) {
    out.scrub_bytes = bg->scrub_bytes();
    out.backfill_bytes = bg->backfill_bytes();
    out.throttle_waits = bg->throttle_waits();
    out.ttfr = bg->time_to_full_redundancy();
  }
  out.faults = fw.faults()->stats();
  return out;
}

ChaosOutcome chaos_run(FaultKind kind, std::uint64_t seed) {
  core::FrameworkConfig cfg;
  cfg.variant = core::VariantKind::delibak;
  cfg.pool_mode = seed % 2 == 0 ? core::PoolMode::replicated
                                : core::PoolMode::erasure;
  cfg.image_size = 32 * MiB;
  cfg.fault_plan = plan_for(kind, seed);
  return chaos_run_with(cfg, seed);
}

constexpr std::uint64_t kSeeds = 32;

ChaosOutcome sweep(FaultKind kind) {
  ChaosOutcome agg;
  const std::uint64_t base = base_seed();
  for (std::uint64_t i = 0; i < kSeeds; ++i) {
    const std::uint64_t seed = base + i;
    SCOPED_TRACE(std::string(kind_name(kind)) + " seed=" +
                 std::to_string(seed));
    const ChaosOutcome out = chaos_run(kind, seed);
    EXPECT_EQ(out.submitted, out.completed_ok + out.errored)
        << "lost I/Os: neither completed nor errored";
    EXPECT_EQ(out.leaks, 0u) << "pipeline not quiescent after drain";
    EXPECT_EQ(out.verify_mismatches, 0u);
    agg.submitted += out.submitted;
    agg.completed_ok += out.completed_ok;
    agg.errored += out.errored;
    agg.retries += out.retries;
    agg.timeouts += out.timeouts;
    agg.degraded_reads += out.degraded_reads;
    agg.qdma_retries += out.qdma_retries;
    agg.faults.frames_dropped += out.faults.frames_dropped;
    agg.faults.frames_delayed += out.faults.frames_delayed;
    agg.faults.osd_crashes += out.faults.osd_crashes;
    agg.faults.osd_restarts += out.faults.osd_restarts;
    agg.faults.crash_dropped_msgs += out.faults.crash_dropped_msgs;
    agg.faults.qdma_fetch_errors += out.faults.qdma_fetch_errors;
    agg.faults.qdma_completion_errors += out.faults.qdma_completion_errors;
  }
  return agg;
}

// --- Chaos seed sweeps (32 seeds x 3 fault kinds) ---------------------------

TEST(ChaosSweep, FrameLossSurvivedByRetries) {
  const ChaosOutcome agg = sweep(FaultKind::frame_loss);
  EXPECT_GT(agg.faults.frames_dropped, 0u) << "plan injected nothing";
  EXPECT_GT(agg.faults.frames_delayed, 0u);
  EXPECT_GT(agg.timeouts, 0u) << "dropped frames must surface as deadlines";
  EXPECT_GT(agg.retries, 0u);
  EXPECT_GT(agg.completed_ok, agg.errored)
      << "retry policy should absorb most loss";
}

TEST(ChaosSweep, OsdCrashSurvivedByRetriesAndDegradedReads) {
  const ChaosOutcome agg = sweep(FaultKind::osd_crash);
  EXPECT_EQ(agg.faults.osd_crashes, kSeeds);
  EXPECT_EQ(agg.faults.osd_restarts, kSeeds);
  EXPECT_GT(agg.faults.crash_dropped_msgs, 0u);
  EXPECT_GT(agg.degraded_reads, 0u)
      << "reads must route around the crashed OSD";
  EXPECT_GT(agg.retries, 0u);
}

TEST(ChaosSweep, QdmaErrorsSurvivedByDmaRedrive) {
  const ChaosOutcome agg = sweep(FaultKind::qdma_error);
  EXPECT_GT(agg.faults.qdma_fetch_errors + agg.faults.qdma_completion_errors,
            0u);
  EXPECT_GT(agg.qdma_retries, 0u) << "UIFD must re-drive failed DMAs";
  EXPECT_GT(agg.completed_ok, agg.errored);
}

// --- Integrity chaos: all three corruption kinds armed at once --------------

/// Media bit-flips in stored objects, a silent-DMA-corruption window, and a
/// torn-write OSD crash — against an integrity-armed stack. Each media event
/// hits a distinct object so single-copy redundancy survives and read-repair
/// (not scrub) is what must heal the damage.
core::FrameworkConfig integrity_chaos_config(std::uint64_t seed) {
  core::FrameworkConfig cfg;
  cfg.variant = core::VariantKind::delibak;
  cfg.pool_mode = seed % 2 == 0 ? core::PoolMode::replicated
                                : core::PoolMode::erasure;
  cfg.image_size = 32 * MiB;
  cfg.integrity = true;

  // Pool id and object ids are deterministic per config: a fault-free probe
  // stack reveals the media-event targets (same trick as FaultAcceptance).
  std::uint32_t pool = 0;
  std::vector<std::uint64_t> oids;
  {
    sim::Simulator probe_sim;
    core::Framework probe(probe_sim, cfg);
    pool = static_cast<std::uint32_t>(probe.image().spec().pool);
    for (std::uint64_t off = 0; off < cfg.image_size; off += cfg.object_size)
      oids.push_back(probe.image().oid_of(off));
  }

  sim::FaultPlan plan;
  plan.seed = seed;
  for (unsigned i = 0; i < 4; ++i) {
    sim::MediaCorruptionEvent ev;
    ev.pool = pool;
    // Stride 3 over 8 objects: the four targets are distinct, so every
    // object keeps a verified copy (or >= k clean shards) to repair from.
    ev.oid = oids[(seed + 3 * i) % oids.size()];
    if (cfg.pool_mode == core::PoolMode::erasure)
      ev.shard =
          static_cast<std::int32_t>((seed + i) % cfg.ec_profile.total());
    ev.at = us(400) + i * us(900);
    plan.media.push_back(ev);
  }
  plan.dma_corruption.push_back(
      sim::DmaCorruptionWindow{us(200), ms(4), 0.02, 4});
  sim::OsdCrashEvent crash;
  crash.osd = static_cast<int>(seed % 32);
  crash.crash_at = ms(1);
  crash.restart_at = ms(6);
  crash.mark_out_after = -1;
  crash.torn_write = true;
  plan.osd_crashes.push_back(crash);
  cfg.fault_plan = plan;
  return cfg;
}

TEST(ChaosSweep, IntegrityArmedCorruptionNeverYieldsWrongBytes) {
  ChaosOutcome agg;
  const std::uint64_t base = base_seed();
  for (std::uint64_t i = 0; i < kSeeds; ++i) {
    const std::uint64_t seed = base + i;
    SCOPED_TRACE("integrity seed=" + std::to_string(seed));
    const ChaosOutcome out = chaos_run_with(integrity_chaos_config(seed), seed);
    EXPECT_EQ(out.submitted, out.completed_ok + out.errored)
        << "lost I/Os: neither completed nor errored";
    EXPECT_EQ(out.verify_mismatches, 0u)
        << "a read returned wrong bytes despite armed checksums";
    EXPECT_EQ(out.leaks, 0u)
        << "a detected corruption neither repaired nor errored";
    agg.submitted += out.submitted;
    agg.completed_ok += out.completed_ok;
    agg.errored += out.errored;
    agg.checksum_failures += out.checksum_failures;
    agg.read_repairs += out.read_repairs;
    agg.torn_replayed += out.torn_replayed;
    agg.faults.media_corruptions += out.faults.media_corruptions;
    agg.faults.dma_corruptions += out.faults.dma_corruptions;
    agg.faults.torn_writes += out.faults.torn_writes;
  }
  // The sweep must have exercised all three corruption kinds and actually
  // caught corruption — a quiet pass would mean the plan injected nothing.
  EXPECT_GT(agg.faults.media_corruptions, 0u);
  EXPECT_GT(agg.faults.dma_corruptions, 0u);
  EXPECT_GT(agg.faults.torn_writes, 0u);
  EXPECT_GT(agg.checksum_failures, 0u) << "injected corruption went undetected";
  EXPECT_GT(agg.read_repairs, 0u);
  EXPECT_GT(agg.torn_replayed, 0u)
      << "restart must replay the torn write-intent journal";
  EXPECT_GT(agg.completed_ok, agg.errored);
}

// --- Blockstore chaos: journaled OSDs under a torn-write crash --------------

/// The integrity crash plan pointed at a blockstore-armed stack: every OSD
/// write lands as a WAL record first, the crash tears the tail record of
/// the victim OSD, and restart replays the journal (intact records apply,
/// the torn record is discarded). A deliberately small journal ring makes
/// the 300-op run cross the cap, so wraparound trims and compaction charge
/// while client I/O is in flight.
core::FrameworkConfig blockstore_chaos_config(std::uint64_t seed) {
  core::FrameworkConfig cfg;
  cfg.variant = core::VariantKind::delibak;
  cfg.pool_mode = seed % 2 == 0 ? core::PoolMode::replicated
                                : core::PoolMode::erasure;
  cfg.image_size = 32 * MiB;
  cfg.blockstore.enabled = true;
  cfg.blockstore.journal_bytes = 256 * KiB;

  sim::FaultPlan plan;
  plan.seed = seed;
  sim::OsdCrashEvent crash;
  crash.osd = static_cast<int>(seed % 32);
  crash.crash_at = ms(1);
  crash.restart_at = ms(6);
  crash.mark_out_after = -1;
  crash.torn_write = true;
  plan.osd_crashes.push_back(crash);
  cfg.fault_plan = plan;
  return cfg;
}

TEST(ChaosSweep, BlockstoreArmedTornCrashLosesNoAcknowledgedWrites) {
  ChaosOutcome agg;
  const std::uint64_t base = base_seed();
  for (std::uint64_t i = 0; i < kSeeds; ++i) {
    const std::uint64_t seed = base + i;
    SCOPED_TRACE("blockstore seed=" + std::to_string(seed));
    const ChaosOutcome out =
        chaos_run_with(blockstore_chaos_config(seed), seed);
    EXPECT_EQ(out.submitted, out.completed_ok + out.errored)
        << "lost I/Os: neither completed nor errored";
    EXPECT_EQ(out.verify_mismatches, 0u)
        << "an acknowledged write was lost, or torn bytes surfaced";
    EXPECT_EQ(out.leaks, 0u)
        << "a journaled intent neither applied nor trimmed (journal_leak)";
    // Cluster-wide occupancy stays under the summed per-OSD cap.
    EXPECT_LE(out.journal_occupancy, 32u * 256 * KiB);
    agg.submitted += out.submitted;
    agg.completed_ok += out.completed_ok;
    agg.errored += out.errored;
    agg.torn_replayed += out.torn_replayed;
    agg.journal_trims += out.journal_trims;
    agg.faults.osd_crashes += out.faults.osd_crashes;
    agg.faults.osd_restarts += out.faults.osd_restarts;
    agg.faults.torn_writes += out.faults.torn_writes;
  }
  EXPECT_EQ(agg.faults.osd_crashes, kSeeds);
  EXPECT_EQ(agg.faults.osd_restarts, kSeeds);
  EXPECT_GT(agg.faults.torn_writes, 0u) << "no crash landed mid-append";
  EXPECT_GT(agg.torn_replayed, 0u)
      << "restart must replay the blockstore journal";
  EXPECT_GT(agg.journal_trims, 0u)
      << "the journal cap/trim policy never ran under load";
  EXPECT_GT(agg.completed_ok, agg.errored);
}

// --- Background chaos: scrub + paced recovery under a permanent mark-out ----

/// Background-armed stack with a permanent single-OSD crash: the monitor
/// marks the victim out at ms(2), the CRUSH reweight triggers paced
/// backfill, and the staggered scrub timers keep reading chunks through the
/// same stations the whole time. Every scheduled chunk and move must
/// resolve (the background_leak rule) and client I/O must survive the storm.
core::FrameworkConfig background_chaos_config(std::uint64_t seed) {
  core::FrameworkConfig cfg;
  cfg.variant = core::VariantKind::delibak;
  cfg.pool_mode = seed % 2 == 0 ? core::PoolMode::replicated
                                : core::PoolMode::erasure;
  cfg.image_size = 32 * MiB;
  cfg.background.enabled = true;
  cfg.background.scrub_interval = ms(4);
  cfg.background.horizon = ms(20);
  cfg.background.scrub_bps = 50.0e6;
  cfg.background.recovery_max_bps = 100.0e6;

  sim::FaultPlan plan;
  plan.seed = seed;
  sim::OsdCrashEvent crash;
  crash.osd = static_cast<int>(seed % 32);
  crash.crash_at = ms(1);
  crash.restart_at = 0;          // never restarts: the reweight is permanent
  crash.mark_out_after = ms(1);  // monitor mark-out at ms(2) -> paced backfill
  plan.osd_crashes.push_back(crash);
  cfg.fault_plan = plan;
  return cfg;
}

TEST(ChaosSweep, BackgroundArmedRebuildStormLosesNoIosAndLeaksNoWork) {
  ChaosOutcome agg;
  std::uint64_t ttfr_episodes = 0;
  const std::uint64_t base = base_seed();
  for (std::uint64_t i = 0; i < kSeeds; ++i) {
    const std::uint64_t seed = base + i;
    SCOPED_TRACE("background seed=" + std::to_string(seed));
    const ChaosOutcome out =
        chaos_run_with(background_chaos_config(seed), seed);
    EXPECT_EQ(out.submitted, out.completed_ok + out.errored)
        << "lost I/Os: neither completed nor errored";
    EXPECT_EQ(out.verify_mismatches, 0u);
    EXPECT_EQ(out.leaks, 0u)
        << "a scrub chunk or recovery move neither completed nor cancelled";
    agg.submitted += out.submitted;
    agg.completed_ok += out.completed_ok;
    agg.errored += out.errored;
    agg.scrub_bytes += out.scrub_bytes;
    agg.backfill_bytes += out.backfill_bytes;
    agg.throttle_waits += out.throttle_waits;
    agg.faults.osd_crashes += out.faults.osd_crashes;
    if (out.ttfr > 0) ++ttfr_episodes;
  }
  EXPECT_EQ(agg.faults.osd_crashes, kSeeds);
  EXPECT_GT(agg.scrub_bytes, 0u) << "scrub never ran under the storm";
  EXPECT_GT(agg.backfill_bytes, 0u) << "the mark-out never drove backfill";
  EXPECT_GT(agg.throttle_waits, 0u) << "the IO-impact budget never engaged";
  EXPECT_GT(ttfr_episodes, 0u)
      << "no run ever reached full redundancy again";
  EXPECT_GT(agg.completed_ok, agg.errored);
}

// --- Bit-exact replay -------------------------------------------------------

TEST(ChaosDeterminism, SameSeedAndPlanReplaysBitExactly) {
  const ChaosOutcome a = chaos_run(FaultKind::frame_loss, base_seed() + 3);
  const ChaosOutcome b = chaos_run(FaultKind::frame_loss, base_seed() + 3);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed_ok, b.completed_ok);
  EXPECT_EQ(a.errored, b.errored);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.degraded_reads, b.degraded_reads);
  EXPECT_EQ(a.faults.frames_dropped, b.faults.frames_dropped);
  EXPECT_EQ(a.faults.frames_delayed, b.faults.frames_delayed);
  EXPECT_EQ(a.faults.total(), b.faults.total());
}

// --- EC degraded-read property ----------------------------------------------

struct EcCase {
  unsigned k, m;
};

class EcDegradedReads : public ::testing::TestWithParam<EcCase> {};

TEST_P(EcDegradedReads, EverySubsetUpToMShardsDownDecodes) {
  const auto [k, m] = GetParam();
  sim::Simulator sim;
  rados::Cluster cluster(sim);
  const int pool = cluster.create_ec_pool(
      "ec", ec::Profile{k, m, ec::GeneratorKind::vandermonde});
  rados::RadosClient client(cluster);

  const std::uint64_t oid = 3;
  const std::vector<std::uint8_t> data = pattern(k * 1024, 77);
  Status wres = Status::Error(Errc::timed_out);
  client.write(pool, oid, 0, data, rados::WriteStrategy::client_fanout,
               [&](Status s) { wres = s; });
  sim.run();
  ASSERT_TRUE(wres.ok()) << wres.to_string();

  const std::vector<int> acting = cluster.acting_set(pool, oid);
  ASSERT_EQ(acting.size(), k + m);
  const unsigned n = k + m;

  auto read_back = [&]() -> Result<std::vector<std::uint8_t>> {
    Result<std::vector<std::uint8_t>> out = Status::Error(Errc::timed_out);
    client.read(pool, oid, 0, data.size(), rados::ReadStrategy::direct_shards,
                [&](Result<std::vector<std::uint8_t>> r) {
                  out = std::move(r);
                });
    sim.run();
    return out;
  };

  for (unsigned mask = 1; mask < (1u << n); ++mask) {
    const unsigned down = static_cast<unsigned>(__builtin_popcount(mask));
    if (down > m + 1) continue;  // <= m must decode; m+1 must fail cleanly
    for (unsigned s = 0; s < n; ++s)
      if (mask & (1u << s)) cluster.set_osd_down(acting[s], true);

    const auto r = read_back();
    if (down <= m) {
      ASSERT_TRUE(r.ok()) << "mask=" << mask << ": " << r.status().to_string();
      EXPECT_EQ(*r, data) << "mask=" << mask;
    } else {
      EXPECT_FALSE(r.ok()) << "mask=" << mask
                           << ": >m shards down must error, not fabricate";
    }

    for (unsigned s = 0; s < n; ++s)
      if (mask & (1u << s)) cluster.set_osd_down(acting[s], false);
  }
  EXPECT_GT(client.degraded_reads(), 0u);

  // Down primary with `primary` strategy falls back to direct shards.
  cluster.set_osd_down(acting[0], true);
  Result<std::vector<std::uint8_t>> fb = Status::Error(Errc::timed_out);
  client.read(pool, oid, 0, data.size(), rados::ReadStrategy::primary,
              [&](Result<std::vector<std::uint8_t>> r) { fb = std::move(r); });
  sim.run();
  ASSERT_TRUE(fb.ok()) << fb.status().to_string();
  EXPECT_EQ(*fb, data);
}

INSTANTIATE_TEST_SUITE_P(BenchProfiles, EcDegradedReads,
                         ::testing::Values(EcCase{4, 2}, EcCase{2, 1},
                                           EcCase{3, 2}),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.k) + "m" +
                                  std::to_string(info.param.m);
                         });

// --- Write re-issue to the new primary after a CRUSH reweight ---------------

TEST(FaultRecovery, WriteRetryLandsOnNewPrimaryAfterReweight) {
  sim::Simulator sim;
  rados::Cluster cluster(sim);
  const int pool = cluster.create_replicated_pool("p", 2);
  rados::RadosClient client(cluster);
  client.set_retry_policy(rados::RetryPolicy{});

  const std::uint64_t oid = 7;
  const std::vector<int> before = cluster.acting_set(pool, oid);
  const int old_primary = before[0];

  sim::FaultPlan plan;
  plan.seed = 11;
  plan.osd_crashes.push_back(
      sim::OsdCrashEvent{old_primary, us(10), /*restart_at=*/0, us(500)});
  sim::FaultInjector faults(sim, plan);
  cluster.arm_faults(faults);

  const std::vector<std::uint8_t> data = pattern(4096, 21);
  Status wres = Status::Error(Errc::timed_out);
  sim.schedule_after(us(50), [&] {
    // First attempt targets the crashed primary and must time out; by the
    // retry, the monitor has marked it out and CRUSH remapped the PG.
    client.write(pool, oid, 0, data, rados::WriteStrategy::primary_copy,
                 [&](Status s) { wres = s; });
  });
  sim.run();

  ASSERT_TRUE(wres.ok()) << wres.to_string();
  EXPECT_GE(client.timeouts(), 1u);
  EXPECT_GE(client.retries(), 1u);
  const std::vector<int> after = cluster.acting_set(pool, oid);
  EXPECT_NE(after[0], old_primary) << "reweight did not move the primary";

  Result<std::vector<std::uint8_t>> r = Status::Error(Errc::timed_out);
  client.read(pool, oid, 0, data.size(), rados::ReadStrategy::primary,
              [&](Result<std::vector<std::uint8_t>> rr) { r = std::move(rr); });
  sim.run();
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(*r, data);
}

// --- Injector unit behaviour ------------------------------------------------

TEST(FaultInjector, WindowsGateDrawsAndNodeScoping) {
  sim::Simulator sim;
  sim::FaultPlan plan;
  plan.seed = 5;
  plan.links.push_back(sim::LinkFaultWindow{us(100), us(200), 1.0, us(7), -1});
  plan.links.push_back(sim::LinkFaultWindow{us(100), us(200), 1.0, 0, 3});
  sim::FaultInjector fi(sim, plan);

  EXPECT_FALSE(fi.should_drop_frame(1, 2)) << "before any window";
  EXPECT_EQ(fi.link_extra_delay(1, 2), 0);

  sim.run_until(us(150));
  EXPECT_TRUE(fi.should_drop_frame(1, 2));
  EXPECT_EQ(fi.link_extra_delay(1, 2), us(7));
  // The node-scoped window only adds its decision on links touching node 3.
  EXPECT_TRUE(fi.should_drop_frame(3, 9));

  sim.run_until(us(300));
  EXPECT_FALSE(fi.should_drop_frame(1, 2)) << "window is half-open [start,end)";
  EXPECT_EQ(fi.link_extra_delay(1, 2), 0);
  EXPECT_GT(fi.stats().frames_dropped, 0u);
  EXPECT_GT(fi.stats().frames_delayed, 0u);
}

TEST(QdmaFaults, FetchErrorStillRetiresDescriptor) {
  sim::Simulator sim;
  fpga::QdmaEngine qdma(sim);
  const auto id = qdma.alloc_queue_set(fpga::QueueClass::replication);
  ASSERT_TRUE(id.ok());

  sim::FaultPlan plan;
  plan.seed = 3;
  plan.qdma.push_back(sim::QdmaFaultWindow{0, sec(1), 1.0, 0.0});
  sim::FaultInjector fi(sim, plan);
  qdma.set_fault_injector(&fi);

  Status got = Status::Ok();
  ASSERT_TRUE(qdma.h2c(*id, 4096, [&](Status s) { got = s; }).ok());
  sim.run();

  EXPECT_EQ(got.code(), Errc::io_error);
  EXPECT_EQ(fi.stats().qdma_fetch_errors, 1u);
  // The descriptor lifecycle closed on the error path: ring drained and a
  // completion entry posted.
  EXPECT_EQ(qdma.queue_set(*id)->h2c_pending(), 0u);
  EXPECT_EQ(qdma.queue_set(*id)->completions_pending(), 1u);
}

// --- Acceptance: fio under combined frame loss + single-OSD crash -----------

TEST(FaultAcceptance, MixedFioRunLosesNoIos) {
  core::FrameworkConfig cfg;
  cfg.variant = core::VariantKind::delibak;
  cfg.pool_mode = core::PoolMode::replicated;
  cfg.image_size = 16 * MiB;

  // Placement is deterministic per config, so a fault-free probe stack
  // reveals which OSD is primary for the image's first object — crashing
  // that one guarantees the run exercises degraded read routing.
  int victim = 0;
  {
    sim::Simulator probe_sim;
    core::Framework probe(probe_sim, cfg);
    victim = probe.cluster().acting_set(probe.image().spec().pool,
                                        probe.image().oid_of(0))[0];
  }

  sim::Simulator sim;
  cfg.fault_plan.seed = 41;
  cfg.fault_plan.links.push_back(
      sim::LinkFaultWindow{us(200), ms(8), 0.01, us(2), -1});
  cfg.fault_plan.osd_crashes.push_back(
      sim::OsdCrashEvent{victim, ms(1), ms(12), -1});
  core::Framework fw(sim, cfg);

  workload::FioEngine engine(fw);
  workload::FioJobSpec spec;
  spec.rw = workload::RwMode::rand_rw;
  spec.rwmix_read = 50;
  spec.bs = 4096;
  spec.iodepth = 32;
  spec.runtime = ms(25);
  spec.ramp = ms(2);
  spec.seed = 11;
  const workload::FioResult result = engine.run(spec);

  EXPECT_GT(result.ops, 0u);
  EXPECT_GT(fw.faults()->stats().total(), 0u);
  // Zero lost I/Os: everything submitted was completed or errored.
  const Counter* completions = fw.metrics().find_counter("io.completions");
  const Counter* writes = fw.metrics().find_counter("io.writes");
  const Counter* reads = fw.metrics().find_counter("io.reads");
  ASSERT_TRUE(completions && writes && reads);
  EXPECT_EQ(completions->value(), writes->value() + reads->value());
  EXPECT_EQ(fw.metrics().find_gauge("io.inflight")->value(), 0);
  EXPECT_GT(fw.rados_client().degraded_reads(), 0u);
  EXPECT_EQ(fw.validator().verify_quiescent(), 0u);
}

}  // namespace
}  // namespace dk
