// PipelineValidator: deliberate violations of every invariant class must be
// detected and classified, clean lifecycles must stay silent, and a real
// Framework run must finish with zero violations and a quiescent pipeline.
#include "common/pipeline_validator.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/framework.hpp"
#include "uring/io_uring.hpp"
#include "uring/ramdisk.hpp"

namespace dk {
namespace {

using Violation = PipelineValidator::Violation;

/// Swallows the deliberate failures so they never abort (debug builds) and
/// keeps a copy for assertions.
class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest()
      : validator_(&registry_),
        scoped_([this](const CheckContext& ctx) {
          reports_.push_back(ctx.message);
        }) {}

  std::uint64_t registry_count(Violation kind) const {
    const Counter* c = registry_.find_counter(
        "check.violations." +
        std::string(PipelineValidator::violation_name(kind)));
    return c ? c->value() : 0;
  }

  MetricsRegistry registry_;
  PipelineValidator validator_;
  std::vector<std::string> reports_;
  ScopedCheckFailureHandler scoped_;
};

// --- SQ/CQ ring state machine ----------------------------------------------

TEST_F(ValidatorTest, CleanRingLifecycleIsSilent) {
  for (std::uint64_t ud = 1; ud <= 8; ++ud) {
    validator_.on_sqe_queued(0);
    validator_.on_sqe_issued(0, ud);
    validator_.on_cqe_posted(0, ud);
  }
  validator_.on_cqes_reaped(0, 8);
  EXPECT_EQ(validator_.violations(), 0u);
  EXPECT_EQ(validator_.ring_inflight(0), 0u);
  EXPECT_EQ(validator_.verify_quiescent(), 0u);
  EXPECT_TRUE(reports_.empty());
}

TEST_F(ValidatorTest, DoubleCompletionDetected) {
  validator_.on_sqe_queued(0);
  validator_.on_sqe_issued(0, 7);
  validator_.on_cqe_posted(0, 7);
  validator_.on_cqe_posted(0, 7);  // the bug
  EXPECT_EQ(validator_.violations(Violation::double_completion), 1u);
  EXPECT_EQ(registry_count(Violation::double_completion), 1u);
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("double completion"), std::string::npos);
}

TEST_F(ValidatorTest, ReusedUserDataAcrossConcurrentSqesIsLegal) {
  validator_.on_sqe_queued(0);
  validator_.on_sqe_issued(0, 7);
  validator_.on_sqe_queued(0);
  validator_.on_sqe_issued(0, 7);
  EXPECT_EQ(validator_.ring_inflight(0), 2u);
  validator_.on_cqe_posted(0, 7);
  validator_.on_cqe_posted(0, 7);
  EXPECT_EQ(validator_.violations(), 0u);
}

TEST_F(ValidatorTest, SqHeadOverrunningTailDetected) {
  validator_.on_sqe_issued(0, 1);  // issued with nothing queued
  EXPECT_EQ(validator_.violations(Violation::ring_accounting), 1u);
}

TEST_F(ValidatorTest, CqHeadOverrunningTailDetected) {
  validator_.on_cqes_reaped(0, 1);  // reaped with nothing posted
  EXPECT_EQ(validator_.violations(Violation::ring_accounting), 1u);
}

TEST_F(ValidatorTest, DroppedCqeCounted) {
  validator_.on_cqe_dropped(2, 99);
  EXPECT_EQ(validator_.violations(Violation::cqe_dropped), 1u);
  EXPECT_EQ(registry_count(Violation::cqe_dropped), 1u);
}

TEST_F(ValidatorTest, RingsTrackedIndependently) {
  validator_.on_sqe_queued(0);
  validator_.on_sqe_issued(0, 1);
  validator_.on_sqe_queued(5);
  validator_.on_sqe_issued(5, 1);
  EXPECT_EQ(validator_.ring_inflight(0), 1u);
  EXPECT_EQ(validator_.ring_inflight(5), 1u);
  validator_.on_cqe_posted(0, 1);
  validator_.on_cqe_posted(5, 1);
  EXPECT_EQ(validator_.violations(), 0u);
}

// --- blk-mq tag lifecycle ---------------------------------------------------

TEST_F(ValidatorTest, CleanTagLifecycleIsSilent) {
  validator_.set_tag_depth(0, 4);
  for (unsigned tag = 0; tag < 4; ++tag) validator_.on_tag_acquired(0, tag);
  EXPECT_EQ(validator_.tags_in_use(0), 4u);
  for (unsigned tag = 0; tag < 4; ++tag) validator_.on_tag_released(0, tag);
  EXPECT_EQ(validator_.tags_in_use(0), 0u);
  EXPECT_EQ(validator_.violations(), 0u);
  EXPECT_EQ(validator_.verify_quiescent(), 0u);
}

TEST_F(ValidatorTest, TagDoubleAcquireDetected) {
  validator_.set_tag_depth(0, 4);
  validator_.on_tag_acquired(0, 2);
  validator_.on_tag_acquired(0, 2);  // still held
  EXPECT_EQ(validator_.violations(Violation::tag_double_acquire), 1u);
  EXPECT_EQ(validator_.tags_in_use(0), 1u);
}

TEST_F(ValidatorTest, TagBadReleaseDetected) {
  validator_.set_tag_depth(0, 4);
  validator_.on_tag_released(0, 1);  // never acquired
  EXPECT_EQ(validator_.violations(Violation::tag_bad_release), 1u);
}

TEST_F(ValidatorTest, TagOutsideDepthDetected) {
  validator_.set_tag_depth(0, 4);
  validator_.on_tag_acquired(0, 4);  // valid tags are 0..3
  EXPECT_EQ(validator_.violations(Violation::tag_overflow), 1u);
}

TEST_F(ValidatorTest, LeakedTagDetectedAtQuiescence) {
  validator_.set_tag_depth(1, 8);
  validator_.on_tag_acquired(1, 3);
  validator_.on_tag_acquired(1, 5);
  validator_.on_tag_released(1, 3);
  EXPECT_EQ(validator_.verify_quiescent(), 1u);  // tag 5 leaked
  EXPECT_EQ(validator_.violations(Violation::tag_leak), 1u);
  EXPECT_EQ(registry_count(Violation::tag_leak), 1u);
}

// --- QDMA descriptor lifecycle ----------------------------------------------

TEST_F(ValidatorTest, CleanDescriptorLifecycleIsSilent) {
  for (std::uint64_t d = 1; d <= 3; ++d) validator_.on_descriptor_posted(d);
  EXPECT_EQ(validator_.descriptors_outstanding(), 3u);
  for (std::uint64_t d = 1; d <= 3; ++d) {
    validator_.on_descriptor_fetched(d);
    validator_.on_descriptor_completed(d);
  }
  EXPECT_EQ(validator_.descriptors_outstanding(), 0u);
  EXPECT_EQ(validator_.violations(), 0u);
  EXPECT_EQ(validator_.verify_quiescent(), 0u);
}

TEST_F(ValidatorTest, DescriptorReuseBeforeCompletionDetected) {
  validator_.on_descriptor_posted(10);
  validator_.on_descriptor_posted(10);  // reused while outstanding
  EXPECT_EQ(validator_.violations(Violation::descriptor_lifetime), 1u);
}

TEST_F(ValidatorTest, DescriptorDoubleFetchDetected) {
  validator_.on_descriptor_posted(10);
  validator_.on_descriptor_fetched(10);
  validator_.on_descriptor_fetched(10);
  EXPECT_EQ(validator_.violations(Violation::descriptor_lifetime), 1u);
}

TEST_F(ValidatorTest, DescriptorCompletedBeforeFetchDetected) {
  validator_.on_descriptor_posted(10);
  validator_.on_descriptor_completed(10);
  EXPECT_EQ(validator_.violations(Violation::descriptor_lifetime), 1u);
}

TEST_F(ValidatorTest, UnknownDescriptorEventsDetected) {
  validator_.on_descriptor_fetched(11);    // never posted
  validator_.on_descriptor_completed(12);  // never posted
  EXPECT_EQ(validator_.violations(Violation::descriptor_lifetime), 2u);
}

TEST_F(ValidatorTest, LeakedDescriptorDetectedAtQuiescence) {
  validator_.on_descriptor_posted(20);
  validator_.on_descriptor_fetched(20);  // never completed
  EXPECT_EQ(validator_.verify_quiescent(), 1u);
  EXPECT_EQ(validator_.violations(Violation::descriptor_leak), 1u);
}

// --- StageTrace hop-ordering audit ------------------------------------------

TEST_F(ValidatorTest, MonotonicTraceIsSilent) {
  StageTrace t;
  t.mark(Stage::submit, 100);
  t.mark(Stage::sq_dispatch, 150);
  t.mark(Stage::complete, 900);
  validator_.on_trace_complete(t);
  EXPECT_EQ(validator_.traces_audited(), 1u);
  EXPECT_EQ(validator_.violations(), 0u);
}

TEST_F(ValidatorTest, ReorderedTraceDetected) {
  StageTrace t;
  t.mark(Stage::submit, 500);
  t.mark(Stage::sq_dispatch, 100);  // before submit: impossible
  t.mark(Stage::complete, 900);
  validator_.on_trace_complete(t);
  EXPECT_EQ(validator_.violations(Violation::trace_order), 1u);
  EXPECT_EQ(registry_count(Violation::trace_order), 1u);
}

TEST_F(ValidatorTest, CompleteWithoutSubmitDetected) {
  StageTrace t;
  t.mark(Stage::complete, 900);
  validator_.on_trace_complete(t);
  EXPECT_EQ(validator_.violations(Violation::trace_order), 1u);
}

// --- teardown / bookkeeping -------------------------------------------------

TEST_F(ValidatorTest, UnbalancedRingDetectedAtQuiescence) {
  validator_.on_sqe_queued(0);
  validator_.on_sqe_issued(0, 1);  // issued but never completed
  EXPECT_GE(validator_.verify_quiescent(), 1u);
  EXPECT_GE(validator_.violations(Violation::quiescence), 1u);
}

TEST_F(ValidatorTest, ViolationLogIsBounded) {
  for (int i = 0; i < 200; ++i) validator_.on_cqe_dropped(0, i);
  EXPECT_EQ(validator_.violations(Violation::cqe_dropped), 200u);
  EXPECT_LE(validator_.violation_log().size(), 64u);
  // The log keeps the newest entries.
  EXPECT_NE(validator_.violation_log().back().find("199"), std::string::npos);
}

// --- against a real ring ----------------------------------------------------

TEST_F(ValidatorTest, RealRingCqOverflowReportsDrops) {
  uring::RamDisk disk(1 * MiB, /*deferred=*/true);
  uring::UringParams params;
  params.sq_entries = 4;  // CQ defaults to 8
  params.mode = uring::RingMode::interrupt;
  uring::IoUring ring(params, disk);
  ring.attach_validator(validator_, 0);

  std::vector<std::uint8_t> buf(512);
  // Push 12 writes through the SQ in batches; completions stay queued in
  // the device until poll(), so completing all 12 at once overflows the
  // 8-entry CQ and must drop 4.
  for (int batch = 0; batch < 3; ++batch) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(ring.prep_write(0, reinterpret_cast<std::uint64_t>(buf.data()),
                                  512, 0, batch * 4 + i)
                      .ok());
    }
    ASSERT_EQ(ring.enter(), 4u);
  }
  disk.poll();
  EXPECT_EQ(validator_.violations(Violation::cqe_dropped), 4u);

  std::vector<uring::Cqe> out(16);
  EXPECT_EQ(ring.peek_cqes(out), 8u);
}

TEST_F(ValidatorTest, RealRingCleanRunStaysQuiescent) {
  uring::RamDisk disk(1 * MiB);
  uring::UringParams params;
  params.mode = uring::RingMode::interrupt;
  uring::IoUring ring(params, disk);
  ring.attach_validator(validator_, 3);

  std::vector<std::uint8_t> buf(4096, 0xAB);
  for (std::uint64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(ring.prep_write(0, reinterpret_cast<std::uint64_t>(buf.data()),
                                4096, 0, i)
                    .ok());
    ring.enter();
    std::vector<uring::Cqe> out(4);
    ASSERT_EQ(ring.peek_cqes(out), 1u);
    EXPECT_EQ(out[0].res, 4096);
  }
  EXPECT_EQ(validator_.violations(), 0u);
  EXPECT_EQ(validator_.verify_quiescent(), 0u);
}

// --- full-stack integration -------------------------------------------------

TEST(ValidatorFramework, FullPipelineRunsWithZeroViolations) {
  sim::Simulator sim;
  core::FrameworkConfig cfg;
  cfg.variant = core::VariantKind::delibak;
  cfg.image_size = 64 * MiB;
  core::Framework fw(sim, cfg);

  std::vector<std::uint8_t> data(8192, 0x5A);
  unsigned done = 0;
  for (unsigned i = 0; i < 16; ++i) {
    fw.write(0, i * 8192, data, [&](std::int32_t r) {
      EXPECT_EQ(r, 8192);
      ++done;
    });
  }
  sim.run();
  ASSERT_EQ(done, 16u);
  for (unsigned i = 0; i < 16; ++i) {
    fw.read(0, i * 8192, 8192, [&](Result<std::vector<std::uint8_t>> r) {
      ASSERT_TRUE(r.ok());
      ++done;
    });
  }
  sim.run();
  ASSERT_EQ(done, 32u);

  PipelineValidator& v = fw.validator();
  EXPECT_EQ(v.violations(), 0u);
  EXPECT_EQ(v.traces_audited(), 32u);
  EXPECT_EQ(v.descriptors_outstanding(), 0u);
  EXPECT_EQ(v.verify_quiescent(), 0u);
  // No violation counters materialized in the metrics registry either.
  for (const auto& name : fw.metrics().counter_names())
    EXPECT_EQ(name.find("check.violations."), std::string::npos) << name;
}

TEST(ValidatorFramework, EveryVariantWindsDownQuiescent) {
  for (core::VariantKind variant :
       {core::VariantKind::sw_ceph_d2, core::VariantKind::sw_delibak,
        core::VariantKind::deliba1, core::VariantKind::deliba2,
        core::VariantKind::delibak}) {
    sim::Simulator sim;
    core::FrameworkConfig cfg;
    cfg.variant = variant;
    cfg.image_size = 64 * MiB;
    core::Framework fw(sim, cfg);
    std::vector<std::uint8_t> data(4096, 0x11);
    fw.write(0, 0, data, [](std::int32_t r) { EXPECT_EQ(r, 4096); });
    sim.run();
    EXPECT_EQ(fw.validator().violations(), 0u)
        << core::variant_short_name(variant);
    EXPECT_EQ(fw.validator().verify_quiescent(), 0u)
        << core::variant_short_name(variant);
  }
}

}  // namespace
}  // namespace dk
