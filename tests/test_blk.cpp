// Tests for the MQ block layer (DMQ): dispatch, tags, merging, splitting,
// scheduler bypass, and CPU-to-hardware-queue mapping.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "blk/mq.hpp"

namespace dk::blk {
namespace {

/// Test driver: records requests; completes on demand (or inline).
class FakeDriver final : public Driver {
 public:
  explicit FakeDriver(bool inline_complete = false)
      : inline_(inline_complete) {}

  void queue_rq(Request request) override {
    if (inline_) {
      request.complete(static_cast<std::int32_t>(request.len));
      return;
    }
    held_.push_back(std::move(request));
  }

  std::size_t held() const { return held_.size(); }
  const Request& at(std::size_t i) const { return held_[i]; }

  void complete_next(std::int32_t res_or_len = -2147483647) {
    ASSERT_FALSE(held_.empty());
    Request r = std::move(held_.front());
    held_.pop_front();
    r.complete(res_or_len == -2147483647 ? static_cast<std::int32_t>(r.len)
                                         : res_or_len);
  }

 private:
  bool inline_;
  std::deque<Request> held_;
};

Request make_req(ReqOp op, std::uint64_t off, std::uint32_t len,
                 std::vector<std::int32_t>* results) {
  Request r;
  r.op = op;
  r.offset = off;
  r.len = len;
  if (results) r.complete = [results](std::int32_t res) { results->push_back(res); };
  else r.complete = [](std::int32_t) {};
  return r;
}

TEST(MqBlockLayer, SubmitDispatchComplete) {
  FakeDriver drv(true);
  MqBlockLayer mq({}, drv);
  std::vector<std::int32_t> results;
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::write, 0, 4096, &results)).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 4096);
  EXPECT_EQ(mq.stats().dispatched, 1u);
  EXPECT_EQ(mq.stats().completed, 1u);
}

TEST(MqBlockLayer, CpuToHwQueueMapping) {
  FakeDriver drv;
  MqBlockLayer mq({.nr_cpus = 6, .nr_hw_queues = 3}, drv);
  EXPECT_EQ(mq.hw_queue_of_cpu(0), 0u);
  EXPECT_EQ(mq.hw_queue_of_cpu(1), 1u);
  EXPECT_EQ(mq.hw_queue_of_cpu(2), 2u);
  EXPECT_EQ(mq.hw_queue_of_cpu(3), 0u);
}

TEST(MqBlockLayer, TagExhaustionQueuesAndResumesOnCompletion) {
  FakeDriver drv;
  MqBlockLayer mq({.nr_hw_queues = 1, .queue_depth = 2}, drv);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(mq.submit(0, make_req(ReqOp::read, 4096ull * i, 4096, nullptr)).ok());
  EXPECT_EQ(drv.held(), 2u) << "only queue_depth requests reach the driver";
  EXPECT_EQ(mq.tags_in_use(0), 2u);
  EXPECT_EQ(mq.queued(0), 2u);
  EXPECT_GT(mq.stats().tag_waits, 0u);
  drv.complete_next();
  EXPECT_EQ(drv.held(), 2u) << "tag release re-pumps the queue";
  drv.complete_next();
  drv.complete_next();
  drv.complete_next();
  EXPECT_EQ(mq.stats().completed, 4u);
}

TEST(MqBlockLayer, OversizedRequestIsSplitAndCompletesOnce) {
  FakeDriver drv(true);
  MqBlockLayer mq({.max_io_bytes = 128 * 1024}, drv);
  std::vector<std::int32_t> results;
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::write, 0, 512 * 1024, &results)).ok());
  ASSERT_EQ(results.size(), 1u) << "split fragments must complete as one bio";
  EXPECT_EQ(results[0], 512 * 1024);
  EXPECT_EQ(mq.stats().splits, 3u);
  EXPECT_EQ(mq.stats().dispatched, 4u);
}

TEST(MqBlockLayer, SplitFragmentsCoverDistinctRanges) {
  FakeDriver drv;
  MqBlockLayer mq({.max_io_bytes = 4096}, drv);
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::read, 0, 3 * 4096, nullptr)).ok());
  ASSERT_EQ(drv.held(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(drv.at(i).offset, i * 4096);
    EXPECT_EQ(drv.at(i).len, 4096u);
  }
}

TEST(MqBlockLayer, SchedulerMergesSequentialBios) {
  FakeDriver drv;
  // queue_depth 1 so the second/third bios wait in the elevator and merge.
  MqBlockLayer mq({.nr_hw_queues = 1, .queue_depth = 1,
                   .bypass_scheduler = false, .merge = true},
                  drv);
  std::vector<std::int32_t> results;
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::write, 0, 4096, &results)).ok());
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::write, 4096, 4096, &results)).ok());
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::write, 8192, 4096, &results)).ok());
  // bio 1 dispatched immediately (took the only tag); bio 3 merged into the
  // queued bio 2.
  EXPECT_EQ(mq.stats().merges, 1u);
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::write, 12288, 4096, &results)).ok());
  // bios 3 and 4 merged into bio 2 which waits for a tag.
  EXPECT_EQ(mq.stats().merges, 2u);
  drv.complete_next();  // completes bio 1, dispatches merged 2+3+4
  ASSERT_EQ(drv.held(), 1u);
  EXPECT_EQ(drv.at(0).len, 3u * 4096);
  drv.complete_next();
  ASSERT_EQ(results.size(), 4u) << "each merged bio gets its own completion";
  for (std::int32_t r : results) EXPECT_EQ(r, 4096);
}

TEST(MqBlockLayer, BypassModeNeverMerges) {
  FakeDriver drv;
  MqBlockLayer mq({.nr_hw_queues = 1, .queue_depth = 1,
                   .bypass_scheduler = true, .merge = true},
                  drv);
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::write, 0, 4096, nullptr)).ok());
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::write, 4096, 4096, nullptr)).ok());
  EXPECT_EQ(mq.stats().merges, 0u);
  EXPECT_EQ(mq.stats().sched_bypass, 2u);
}

TEST(MqBlockLayer, NonAdjacentBiosDoNotMerge) {
  FakeDriver drv;
  MqBlockLayer mq({.nr_hw_queues = 1, .queue_depth = 1,
                   .bypass_scheduler = false, .merge = true},
                  drv);
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::write, 0, 4096, nullptr)).ok());
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::write, 4096, 4096, nullptr)).ok());
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::write, 99 * 4096, 4096, nullptr)).ok());
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::read, 8192, 4096, nullptr)).ok());
  EXPECT_EQ(mq.stats().merges, 0u) << "gap or different op must not merge";
}

TEST(MqBlockLayer, ErrorPropagatesToAllMergedBios) {
  FakeDriver drv;
  MqBlockLayer mq({.nr_hw_queues = 1, .queue_depth = 1,
                   .bypass_scheduler = false, .merge = true},
                  drv);
  std::vector<std::int32_t> results;
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::write, 0, 4096, &results)).ok());
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::write, 4096, 4096, &results)).ok());
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::write, 8192, 4096, &results)).ok());
  drv.complete_next(-5);  // bio 1 fails
  drv.complete_next(-5);  // merged bio 2+3 fails
  ASSERT_EQ(results.size(), 3u);
  for (std::int32_t r : results) EXPECT_EQ(r, -5);
}

TEST(MqBlockLayer, ZeroLengthBioRejected) {
  FakeDriver drv;
  MqBlockLayer mq({}, drv);
  EXPECT_FALSE(mq.submit(0, make_req(ReqOp::read, 0, 0, nullptr)).ok());
}

TEST(MqBlockLayer, SeparateHwQueuesHaveIndependentTags) {
  FakeDriver drv;
  MqBlockLayer mq({.nr_cpus = 2, .nr_hw_queues = 2, .queue_depth = 1}, drv);
  ASSERT_TRUE(mq.submit(0, make_req(ReqOp::read, 0, 512, nullptr)).ok());
  ASSERT_TRUE(mq.submit(1, make_req(ReqOp::read, 512, 512, nullptr)).ok());
  EXPECT_EQ(drv.held(), 2u) << "per-queue tags must not interfere";
  EXPECT_EQ(mq.tags_in_use(0), 1u);
  EXPECT_EQ(mq.tags_in_use(1), 1u);
}

}  // namespace
}  // namespace dk::blk
