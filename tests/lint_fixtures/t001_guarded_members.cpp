// dklint-fixture-as: src/common/fixture_t001.cpp
// Fixture: DK-T001 unguarded members of mutex-bearing classes. Atomics,
// mutexes, condition variables, and constants are exempt.
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace fixture {

class Guarded {
 public:
  void add(std::uint64_t v) {
    dk::MutexLock lock(mu_);
    total_ += v;
  }

 private:
  mutable dk::Mutex mu_;
  std::uint64_t total_ DK_GUARDED_BY(mu_) = 0;
  std::atomic<std::uint64_t> peeks_{0};
  std::uint64_t unguarded_ = 0;  // expect: DK-T001
  std::vector<int> also_unguarded_;  // expect: DK-T001
  const int limit_ = 8;
};

class NoMutexNoRules {
 public:
  int value() const { return value_; }

 private:
  int value_ = 0;  // single-threaded class: nothing required
};

}  // namespace fixture
