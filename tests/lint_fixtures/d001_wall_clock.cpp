// dklint-fixture-as: src/sim/fixture_d001.cpp
// Fixture: DK-D001 wall-clock reads. `// expect:` marks the line a finding
// must anchor to; the runner (tests/test_dklint.py) compares exactly.
#include <chrono>
#include <ctime>

namespace fixture {

long bad_steady() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // expect: DK-D001
}

long bad_system() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // expect: DK-D001
}

long bad_clock_gettime() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);  // expect: DK-D001
  return ts.tv_nsec;
}

long good_injected(long simulated_now) {
  // Simulated time arrives as a parameter: nothing to flag.
  return simulated_now + 5;
}

}  // namespace fixture
