// dklint-fixture-as: src/sim/fixture_h002.cpp
// Fixture: DK-H002 std::function in DK_HOT functions (type-erased calls
// allocate and indirect; the hot path uses EventFn or templates).
#include <functional>

#include "common/annotations.hpp"

namespace fixture {

DK_HOT int bad_std_function(int x) {
  std::function<int(int)> f = [](int v) { return v + 1; };  // expect: DK-H002
  return f(x);
}

int cold_std_function(int x) {
  std::function<int(int)> f = [](int v) { return v + 1; };
  return f(x);
}

template <typename F>
DK_HOT int good_template_callable(F&& f, int x) {
  return f(x);
}

}  // namespace fixture
