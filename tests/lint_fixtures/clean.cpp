// dklint-fixture-as: src/sim/fixture_clean.cpp
// Fixture: idiomatic hot-path code producing zero findings — the shapes
// dklint must NOT flag (placement new, seeded engines, sorted iteration,
// guarded members, tight captures).
#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace fixture {

class Ledger {
 public:
  void add(std::uint64_t id, int delta) {
    dk::MutexLock lock(mu_);
    entries_[id] += delta;
  }

  std::vector<std::uint64_t> ids() const {
    dk::MutexLock lock(mu_);
    std::vector<std::uint64_t> keys;
    keys.reserve(entries_.size());
    // dklint: allow(DK-D003) — key collection only; sorted before any use
    for (const auto& [id, delta] : entries_) keys.push_back(id);  // expect-suppressed: DK-D003
    std::sort(keys.begin(), keys.end());
    return keys;
  }

 private:
  mutable dk::Mutex mu_;
  std::unordered_map<std::uint64_t, int> entries_ DK_GUARDED_BY(mu_);
};

struct Slot {
  int v = 0;
};

DK_HOT Slot* emplace(void* storage, int v) {
  return ::new (storage) Slot{v};
}

DK_HOT int jitter(std::mt19937_64& engine) {
  return static_cast<int>(engine() & 0xff);
}

}  // namespace fixture
