// Conventions fixture: a .cpp must include its own header first.
#include "other.hpp"  // expect-convention: own-header-first

#include "pair.hpp"

namespace fixture {
int paired() { return 1; }
}  // namespace fixture
