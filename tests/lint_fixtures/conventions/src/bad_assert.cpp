// Conventions fixture: naked assert() and <cassert> includes are banned in
// src/ — invariants go through DK_CHECK/DK_DCHECK (common/check.hpp).
#include <cassert>  // expect-convention: no-naked-assert

namespace fixture {

int checked(int v) {
  assert(v > 0);  // expect-convention: no-naked-assert
  static_assert(sizeof(int) >= 4, "static_assert is fine");
  return v;
}

}  // namespace fixture
