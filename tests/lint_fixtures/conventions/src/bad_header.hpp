// Conventions fixture: a header whose first directive is not #pragma once
// and whose project includes are unsorted.
#include "zeta.hpp"  // expect-convention: pragma-once-first  expect-convention: include-order
#include "alpha.hpp"

namespace fixture {
inline int two() { return 2; }
}  // namespace fixture
