// Conventions fixture: observability attach points take the registry by
// reference, not by pointer.
#pragma once

namespace fixture {

class MetricsRegistry;

void attach_metrics(MetricsRegistry* registry);  // expect-convention: attach-naming

}  // namespace fixture
