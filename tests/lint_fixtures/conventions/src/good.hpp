// Conventions fixture: a fully conforming header — zero violations.
#pragma once

#include "alpha.hpp"
#include "zeta.hpp"

namespace fixture {
inline int one() { return 1; }
}  // namespace fixture
