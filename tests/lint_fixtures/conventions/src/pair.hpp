// Conventions fixture: the paired header for pair.cpp (itself clean).
#pragma once

namespace fixture {
int paired();
}  // namespace fixture
