// Conventions fixture: src/sim/ event callbacks must be EventFn, never
// std::function<void()>.
#pragma once

#include <functional>

namespace fixture {

struct Scheduler {
  void post(std::function<void()> fn);  // expect-convention: no-std-function-event
};

}  // namespace fixture
