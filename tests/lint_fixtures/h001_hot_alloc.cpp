// dklint-fixture-as: src/sim/fixture_h001.cpp
// Fixture: DK-H001 heap traffic inside DK_HOT functions. The same
// constructs in a non-hot function are not findings.
#include <cstdlib>
#include <memory>
#include <new>

#include "common/annotations.hpp"

namespace fixture {

struct Payload {
  int v = 0;
};

DK_HOT int* bad_new() {
  return new int(7);  // expect: DK-H001
}

DK_HOT void bad_delete(int* p) {
  delete p;  // expect: DK-H001
}

DK_HOT void* bad_malloc() {
  return std::malloc(16);  // expect: DK-H001
}

DK_HOT void* bad_operator_new() {
  return ::operator new(16);  // expect: DK-H001
}

DK_HOT std::unique_ptr<Payload> bad_make_unique() {
  return std::make_unique<Payload>();  // expect: DK-H001
}

DK_HOT Payload* good_placement_new(void* slot) {
  // Placement new constructs in pre-owned storage: no heap traffic.
  return ::new (slot) Payload{};
}

int* cold_new_is_fine() {
  return new int(7);
}

}  // namespace fixture
