// dklint-fixture-as: src/sim/fixture_h003.cpp
// Fixture: DK-H003 risky lambda captures in DK_HOT functions. EventFn's
// inline buffer is 32 bytes; wide or implicit captures spill to the pool.
#include <cstdint>

#include "common/annotations.hpp"

namespace fixture {

using Sink = void (*)(long);

DK_HOT void bad_default_by_value(Sink sink, long a, long b) {
  auto fn = [=] { sink(a + b); };  // expect: DK-H003
  fn();
}

DK_HOT void bad_default_by_ref(Sink sink, long a) {
  auto fn = [&] { sink(a); };  // expect: DK-H003
  fn();
}

DK_HOT void bad_wide_capture(Sink sink, long a, long b, long c, long d) {
  auto fn = [sink, a, b, c, d] { sink(a + b + c + d); };  // expect: DK-H003
  fn();
}

DK_HOT void good_narrow_capture(Sink sink, long a) {
  auto fn = [sink, a] { sink(a); };
  fn();
}

DK_HOT long good_captureless(long x) {
  auto fn = [](long v) { return v * 2; };
  return fn(x);
}

void cold_defaults_are_fine(Sink sink, long a) {
  auto fn = [=] { sink(a); };
  fn();
}

}  // namespace fixture
