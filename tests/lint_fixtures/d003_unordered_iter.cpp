// dklint-fixture-as: src/sim/fixture_d003.cpp
// Fixture: DK-D003 iteration over unordered containers.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

std::unordered_map<unsigned, int> table_;
std::unordered_set<std::string> names_;

int bad_map_iteration() {
  int sum = 0;
  for (const auto& [key, value] : table_) {  // expect: DK-D003
    sum += static_cast<int>(key) * value;
  }
  return sum;
}

std::size_t bad_set_iteration() {
  std::size_t total = 0;
  for (const std::string& name : names_) {  // expect: DK-D003
    total += name.size();
  }
  return total;
}

std::vector<unsigned> sorted_keys() {
  std::vector<unsigned> keys;
  // dklint: allow(DK-D003) — key collection only; sorted before any use
  for (const auto& [key, value] : table_) keys.push_back(key);  // expect-suppressed: DK-D003
  std::sort(keys.begin(), keys.end());
  return keys;
}

int good_sorted_iteration() {
  int sum = 0;
  for (const unsigned key : sorted_keys()) {
    sum += table_.at(key);
  }
  return sum;
}

int good_classic_for(const std::vector<int>& v) {
  int sum = 0;
  for (std::size_t i = 0; i < v.size(); ++i) sum += v[i];
  return sum;
}

}  // namespace fixture
