// dklint-fixture-as: src/common/fixture_t002.cpp
// Fixture: DK-T002 raw std synchronization primitives in src/. The dk
// wrappers (common/mutex.hpp) carry the Clang TSA capability attributes a
// bare std::mutex lacks.
#include <mutex>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace fixture {

class Bad {
 public:
  void touch() {
    std::lock_guard<std::mutex> lock(mu_);  // expect: DK-T002
    ++n_;
  }

 private:
  std::mutex mu_;  // expect: DK-T002
  int n_ = 0;  // expect: DK-T001 (Bad is mutex-bearing, n_ unguarded)
};

class Good {
 public:
  void touch() {
    dk::MutexLock lock(mu_);
    ++n_;
  }

 private:
  mutable dk::Mutex mu_;
  int n_ DK_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
