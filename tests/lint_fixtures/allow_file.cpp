// dklint-fixture-as: src/sim/fixture_allow_file.cpp
// Fixture: allow-file() suppresses a check for the whole translation unit.
// dklint: allow-file(DK-D002) — fixture: file-wide waiver form
#include <cstdlib>

namespace fixture {

int first() {
  return std::rand();  // expect-suppressed: DK-D002
}

int second() {
  return std::rand();  // expect-suppressed: DK-D002
}

}  // namespace fixture
