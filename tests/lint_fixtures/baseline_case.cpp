// dklint-fixture-as: src/sim/fixture_baseline.cpp
// Fixture: a violation grandfathered by tests/lint_fixtures/baseline.json.
// The runner invokes dklint with that baseline and asserts exit 0 with the
// finding tagged baselined; with the default (empty) baseline it is active.
#include <cstdlib>

namespace fixture {

int grandfathered() {
  return std::rand();  // expect: DK-D002
}

}  // namespace fixture
