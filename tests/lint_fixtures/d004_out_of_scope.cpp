// dklint-fixture-as: src/common/fixture_d004_oos.cpp
// Fixture: DK-D004 does NOT apply outside src/sim, src/rados, src/net —
// hashing a pointer for diagnostics is fine there. No findings expected.
#include <unordered_map>

namespace fixture {

struct Widget {};

std::unordered_map<Widget*, int> diagnostics_only_;

}  // namespace fixture
