// dklint-fixture-as: src/sim/fixture_d002.cpp
// Fixture: DK-D002 ambient randomness.
#include <cstdlib>
#include <random>

namespace fixture {

unsigned bad_random_device() {
  std::random_device rd;  // expect: DK-D002
  return rd();
}

int bad_rand() {
  return std::rand();  // expect: DK-D002
}

void bad_srand(unsigned seed) {
  srand(seed);  // expect: DK-D002
}

struct Dice {
  int rand() { return 4; }
};

int good_seeded(std::uint64_t seed) {
  // A caller-owned seed is the sanctioned source of randomness; a member
  // function that happens to be named rand() is not libc rand().
  std::mt19937_64 engine(seed);
  Dice d;
  return static_cast<int>(engine()) + d.rand();
}

}  // namespace fixture
