// dklint-fixture-as: src/sim/fixture_suppressions.cpp
// Fixture: the suppression grammar. A well-formed allow() silences its
// statement (expect-suppressed); a reasonless or unknown-check allow() is
// itself a DK-S001 finding anchored at the comment.
#include <chrono>
#include <cstdlib>

namespace fixture {

long trailing_allow() {
  // dklint: allow(DK-D001) — fixture exercising the preceding-line form
  return std::chrono::steady_clock::now()  // expect-suppressed: DK-D001
      .time_since_epoch()
      .count();
}

int same_line_allow() {
  return std::rand();  // dklint: allow(DK-D002) — same-line form // expect-suppressed: DK-D002
}

int reasonless_allow() {
  // dklint: allow(DK-D002)  (expect: DK-S001)
  return std::rand();  // expect-suppressed: DK-D002
}

// dklint: allow(DK-9999) — no such check  (expect: DK-S001)
inline int unknown_check() { return 0; }

}  // namespace fixture
