// dklint-fixture-as: src/rados/fixture_d004.cpp
// Fixture: DK-D004 pointer-keyed hashed containers in a determinism-critical
// scope (this fixture masquerades as src/rados/, where the check applies).
#include <cstdint>
#include <unordered_map>

namespace fixture {

struct Osd {};

std::unordered_map<Osd*, int> bad_ptr_keyed_;  // expect: DK-D004

std::unordered_map<std::uint64_t, Osd*> good_id_keyed_;  // values may point

}  // namespace fixture
