// DK_CHECK / DK_DCHECK semantics: evaluation rules, failure-context capture,
// handler scoping, and the release-mode counted-violation path.
#include "common/check.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.hpp"

namespace dk {
namespace {

/// Captures every reported failure for the lifetime of the fixture.
class CheckTest : public ::testing::Test {
 protected:
  CheckTest()
      : scoped_([this](const CheckContext& ctx) { captured_.push_back(ctx); }) {
  }

  std::vector<CheckContext> captured_;
  ScopedCheckFailureHandler scoped_;
};

TEST_F(CheckTest, PassingCheckReportsNothing) {
  DK_CHECK(1 + 1 == 2);
  DK_CHECK(true) << "this message must never be built";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(CheckTest, FailingCheckCapturesExpressionFileLineAndMessage) {
  const int line_before = __LINE__;
  DK_CHECK(2 + 2 == 5) << "ring " << 3 << " broke";
  ASSERT_EQ(captured_.size(), 1u);
  const CheckContext& ctx = captured_[0];
  EXPECT_STREQ(ctx.expression, "2 + 2 == 5");
  EXPECT_NE(std::strstr(ctx.file, "test_check.cpp"), nullptr);
  EXPECT_EQ(ctx.line, line_before + 1);
  EXPECT_EQ(ctx.message, "ring 3 broke");
#if defined(NDEBUG)
  EXPECT_FALSE(ctx.fatal);
#else
  EXPECT_TRUE(ctx.fatal);
#endif
}

TEST_F(CheckTest, FailingCheckWithoutMessageHasEmptyMessage) {
  DK_CHECK(false);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].message, "");
}

TEST_F(CheckTest, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  DK_CHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
  DK_CHECK(++evaluations > 100) << "deliberate failure";
  EXPECT_EQ(evaluations, 2);
  EXPECT_EQ(captured_.size(), 1u);
}

TEST_F(CheckTest, MessageOperandsNotEvaluatedWhenCheckPasses) {
  int builds = 0;
  auto expensive = [&builds] {
    ++builds;
    return std::string("expensive");
  };
  DK_CHECK(true) << expensive();
  EXPECT_EQ(builds, 0);
  DK_CHECK(false) << expensive();
  EXPECT_EQ(builds, 1);
}

TEST_F(CheckTest, FailuresTotalIsMonotonic) {
  const std::uint64_t before = check_failures_total();
  DK_CHECK(false) << "one";
  DK_CHECK(false) << "two";
  EXPECT_EQ(check_failures_total(), before + 2);
}

TEST_F(CheckTest, DcheckMatchesBuildType) {
  int evaluations = 0;
  DK_DCHECK(++evaluations < 0) << "hot-path check";
#if defined(NDEBUG)
  // Compiled out: the condition must not run and nothing is reported.
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(captured_.empty());
#else
  // Debug: identical to DK_CHECK.
  EXPECT_EQ(evaluations, 1);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].message, "hot-path check");
#endif
}

TEST_F(CheckTest, ScopedHandlerNestsAndRestores) {
  std::vector<std::string> inner;
  {
    ScopedCheckFailureHandler nested(
        [&inner](const CheckContext& ctx) { inner.push_back(ctx.message); });
    DK_CHECK(false) << "seen by inner";
  }
  DK_CHECK(false) << "seen by outer";
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(inner[0], "seen by inner");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].message, "seen by outer");
}

#if defined(NDEBUG)
// Release only: with no handler installed, the default handler counts the
// violation in the check metrics registry and continues. (In debug the
// default handler aborts, so this path can only be exercised here.)
TEST(CheckDefaultHandler, ReleaseFailuresAreCountedInRegistry) {
  MetricsRegistry registry;
  set_check_metrics_registry(&registry);
  DK_CHECK(1 == 2) << "counted, not fatal";
  set_check_metrics_registry(nullptr);

  const Counter* total = registry.find_counter("check.violations.total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value(), 1u);
  // A per-site counter keyed by <file>:<line> exists too.
  bool found_site = false;
  for (const auto& name : registry.counter_names())
    if (name.find("test_check.cpp") != std::string::npos) found_site = true;
  EXPECT_TRUE(found_site);
}
#endif

}  // namespace
}  // namespace dk
