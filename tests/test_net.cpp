// Tests for the simulated 10 GbE fabric, including the iperf validation the
// paper uses to characterize its testbed (9.8 Gb/s measured on 10 GbE).
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace dk::net {
namespace {

TEST(WireBytes, SingleFrameSmallPayload) {
  // 4 kB fits one jumbo frame: payload + one 78B overhead + one 40B hdr set.
  EXPECT_EQ(wire_bytes(4096, 9000), 4096 + 78 + 40);
}

TEST(WireBytes, MultiFrameSplit) {
  // MTU 1500 -> 1460 payload bytes per frame; 4 kB needs 3 frames.
  EXPECT_EQ(wire_bytes(4096, 1500), 4096 + 3 * (78 + 40));
}

TEST(WireBytes, ZeroPayloadStillCostsAFrame) {
  EXPECT_EQ(wire_bytes(0, 9000), 78u + 40u);
}

TEST(Network, DeliversMessageWithLatency) {
  sim::Simulator sim;
  Network net(sim);
  bool got = false;
  Nanos at = 0;
  NodeId a = net.add_node("a", [](const Message&) {});
  NodeId b = net.add_node("b", [&](const Message& m) {
    got = true;
    at = sim.now();
    EXPECT_EQ(m.payload_bytes, 4096u);
    EXPECT_EQ(m.src, 0u);
  });
  net.send(Message{a, b, 4096, 0, nullptr});
  sim.run();
  ASSERT_TRUE(got);
  // 2x NIC latency (2.5us) + switch (1us) + 2x serialization (~3.4us each).
  EXPECT_GT(at, us(5));
  EXPECT_LT(at, us(20));
}

TEST(Network, LoopbackSkipsFabric) {
  sim::Simulator sim;
  Network net(sim);
  Nanos at = -1;
  NodeId a = net.add_node("a", [&](const Message&) { at = sim.now(); });
  net.send(Message{a, a, 1 * MiB, 0, nullptr});
  sim.run();
  EXPECT_EQ(at, net.config().nic.nic_latency);
}

TEST(Network, MessageBodyIsCarried) {
  sim::Simulator sim;
  Network net(sim);
  auto body = std::make_shared<int>(1234);
  int got = 0;
  NodeId a = net.add_node("a", [](const Message&) {});
  NodeId b = net.add_node("b", [&](const Message& m) {
    got = *std::static_pointer_cast<int>(m.body);
  });
  net.send(Message{a, b, 64, 7, body});
  sim.run();
  EXPECT_EQ(got, 1234);
}

TEST(Network, ConcurrentSendsShareLinkBandwidth) {
  sim::Simulator sim;
  Network net(sim);
  NodeId a = net.add_node("a", [](const Message&) {});
  std::vector<Nanos> arrivals;
  NodeId b =
      net.add_node("b", [&](const Message&) { arrivals.push_back(sim.now()); });
  // Two 1 MiB messages: the second must serialize after the first.
  net.send(Message{a, b, MiB, 0, nullptr});
  net.send(Message{a, b, MiB, 0, nullptr});
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const Nanos gap = arrivals[1] - arrivals[0];
  // 1 MiB at 1.25 GB/s is ~839 us serialization.
  EXPECT_GT(gap, us(700));
}

TEST(Network, IperfReaches9Point8GbpsOnJumboFrames) {
  // Reproduces the §III-C.1 testbed validation: "achieving a raw bandwidth
  // of 9.8 Gb/s on the 10 GbE network used".
  sim::Simulator sim;
  Network net(sim);
  const double gbps = run_iperf(net, 0, 0, ms(200));
  EXPECT_GT(gbps, 9.6);
  EXPECT_LT(gbps, 10.0);
}

TEST(Network, IperfStandardMtuIsSlower) {
  sim::Simulator sim;
  FabricConfig cfg;
  cfg.nic.mtu = 1500;
  Network net(sim, cfg);
  const double gbps = run_iperf(net, 0, 0, ms(200));
  EXPECT_GT(gbps, 9.0);
  EXPECT_LT(gbps, 9.5);  // framing overhead caps standard MTU below 9.5
}

TEST(Network, RxGoodputAccounting) {
  sim::Simulator sim;
  Network net(sim);
  NodeId a = net.add_node("a", [](const Message&) {});
  NodeId b = net.add_node("b", [](const Message&) {});
  net.send(Message{a, b, 10 * MiB, 0, nullptr});
  sim.run();
  EXPECT_GT(net.node_rx_mbps(b, sim.now()), 0.0);
  EXPECT_EQ(net.payload_bytes_sent(), 10 * MiB);
}

}  // namespace
}  // namespace dk::net
