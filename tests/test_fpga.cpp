// Tests for the FPGA stack: U280 resources, accelerator kernels (Table I),
// QDMA queue sets and DMA timing, DFX partial reconfiguration, the TCP/IP
// offload path, and the power model (Table III scenarios).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crush/builder.hpp"
#include "fpga/device.hpp"

namespace dk::fpga {
namespace {

TEST(U280, SlrResourcesSumToChip) {
  Resources sum;
  for (unsigned i = 0; i < U280::kSlrCount; ++i) sum += U280::slr(i);
  // SLR1/2 round down when splitting the remainder; allow that slack.
  EXPECT_LE(sum.luts, U280::chip().luts);
  EXPECT_GE(sum.luts, U280::chip().luts - 2);
  EXPECT_LE(sum.bram, U280::chip().bram);
}

TEST(U280, UtilizationPercentages) {
  auto u = utilization({130'400, 0, 0, 0, 0}, U280::chip());
  EXPECT_NEAR(u.luts, 10.0, 0.01);
  EXPECT_DOUBLE_EQ(u.registers, 0.0);
}

TEST(U280, FitsChecksEveryComponent) {
  Resources cap{100, 100, 100, 100, 100};
  EXPECT_TRUE(cap.fits({100, 100, 100, 100, 100}));
  EXPECT_FALSE(cap.fits({101, 0, 0, 0, 0}));
  EXPECT_FALSE(cap.fits({0, 0, 0, 101, 0}));
}

TEST(AccelKernel, TableOneSpecsAreLoaded) {
  const auto& straw = kernel_spec(KernelKind::straw);
  EXPECT_EQ(straw.sw_exec_time, us(55));
  EXPECT_EQ(straw.rtl_cycles_min, 105u);
  EXPECT_EQ(straw.hw_exec_time, us(49));
  EXPECT_EQ(straw.sloc_verilog, 880u);
  const auto& rs = kernel_spec(KernelKind::rs_encoder);
  EXPECT_EQ(rs.sw_exec_time, us(65));
  EXPECT_FALSE(rs.reconfigurable);
  EXPECT_TRUE(kernel_spec(KernelKind::uniform).reconfigurable);
}

TEST(AccelKernel, KernelLatencyIsSubMicrosecond) {
  // Table I: every kernel's RTL latency is deep sub-microsecond, orders of
  // magnitude below its software execution time.
  for (KernelKind kind : kAllKernels) {
    AccelKernel k(kind);
    EXPECT_LT(k.op_latency(), us(1)) << kernel_name(kind);
    EXPECT_LT(k.op_latency() * 30, kernel_spec(kind).sw_exec_time)
        << kernel_name(kind);
  }
}

TEST(AccelKernel, ChooseMatchesHostCrushBitExact) {
  // The offloaded placement must agree with the host library exactly, or
  // clients and OSDs would disagree about object locations.
  crush::Bucket bucket(-1, 1, crush::BucketAlg::straw2);
  for (int i = 0; i < 12; ++i)
    ASSERT_TRUE(bucket.add_item(i, crush::kWeightOne * (1 + i % 3)).ok());
  AccelKernel k(KernelKind::straw2);
  for (std::uint32_t x = 0; x < 2000; ++x)
    ASSERT_EQ(k.choose(bucket, x, 0), bucket.choose(x, 0)) << "x=" << x;
}

TEST(AccelKernel, EncodeCyclesScaleWithBytes) {
  AccelKernel k(KernelKind::rs_encoder);
  EXPECT_EQ(k.encode_cycles(32), 150u) << "floor at the per-op cycle count";
  EXPECT_EQ(k.encode_cycles(128 * 1024), 128u * 1024 / 32);
  EXPECT_GT(k.encode_latency(128 * 1024), k.encode_latency(4096));
}

TEST(Qdma, AllocateAndFreeQueueSets) {
  sim::Simulator sim;
  QdmaEngine q(sim);
  auto a = q.alloc_queue_set(QueueClass::replication);
  auto b = q.alloc_queue_set(QueueClass::erasure_coding, /*vf=*/3);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(q.queue_set_count(), 2u);
  EXPECT_EQ(q.queue_set(*b)->virtual_function(), 3u);
  EXPECT_EQ(q.queue_sets_of_vf(3).size(), 1u);
  ASSERT_TRUE(q.free_queue_set(*a).ok());
  EXPECT_EQ(q.queue_set_count(), 1u);
  // Freed slot is reused.
  auto c = q.alloc_queue_set(QueueClass::replication);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);
}

TEST(Qdma, QueueSetLimitEnforced) {
  sim::Simulator sim;
  QdmaConfig cfg;
  cfg.max_queue_sets = 4;
  QdmaEngine q(sim, cfg);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(q.alloc_queue_set(QueueClass::replication).ok());
  EXPECT_FALSE(q.alloc_queue_set(QueueClass::replication).ok());
}

TEST(Qdma, H2cDmaTiming) {
  sim::Simulator sim;
  QdmaEngine q(sim);
  auto id = q.alloc_queue_set(QueueClass::replication);
  ASSERT_TRUE(id.ok());
  Nanos done_at = -1;
  ASSERT_TRUE(q.h2c(*id, 4096, [&](Status) { done_at = sim.now(); }).ok());
  sim.run();
  // doorbell(0.8us) + (4096+128)B @ 12 GB/s (~0.35us) + completion(0.6us).
  EXPECT_EQ(done_at, q.idle_latency(4096));
  EXPECT_GT(done_at, us(1.5));
  EXPECT_LT(done_at, us(3));
  EXPECT_EQ(q.stats().h2c_ops, 1u);
  EXPECT_EQ(q.stats().h2c_bytes, 4096u);
}

TEST(Qdma, DescriptorRingsTrackOps) {
  sim::Simulator sim;
  QdmaEngine q(sim);
  auto id = q.alloc_queue_set(QueueClass::erasure_coding);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(q.c2h(*id, 1024, [](Status) {}).ok());
  EXPECT_EQ(q.queue_set(*id)->c2h_pending(), 1u);
  sim.run();
  EXPECT_EQ(q.queue_set(*id)->c2h_pending(), 0u);
  EXPECT_EQ(q.queue_set(*id)->completions_pending(), 1u);
  EXPECT_TRUE(q.queue_set(*id)->pop_completion().has_value());
}

TEST(Qdma, ConcurrentDmasSharePcieBandwidth) {
  sim::Simulator sim;
  QdmaEngine q(sim);
  auto id = q.alloc_queue_set(QueueClass::replication);
  ASSERT_TRUE(id.ok());
  std::vector<Nanos> done;
  for (int i = 0; i < 2; ++i)
    ASSERT_TRUE(q.h2c(*id, 1 * MiB, [&](Status) { done.push_back(sim.now()); }).ok());
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Second transfer serializes behind the first on the PCIe channel.
  EXPECT_GT(done[1] - done[0], us(50));
}

TEST(Qdma, DescriptorRamBudgetRejectsOverflow) {
  sim::Simulator sim;
  QdmaConfig cfg;
  cfg.ring_entries = 2048;  // let the rings hold more than the URAM budget
  QdmaEngine q(sim, cfg);
  auto id = q.alloc_queue_set(QueueClass::replication);
  ASSERT_TRUE(id.ok());
  unsigned accepted = 0;
  for (std::uint64_t i = 0; i < kMaxOutstandingDescriptors + 10; ++i)
    if (q.h2c(*id, 64, [](Status) {}).ok()) ++accepted;
  EXPECT_EQ(accepted, kMaxOutstandingDescriptors);
  EXPECT_GT(q.stats().ring_full_rejects, 0u);
  sim.run();
  // Budget frees after completion.
  EXPECT_TRUE(q.h2c(*id, 64, [](Status) {}).ok());
  sim.run();
}

TEST(Dfx, StaticKernelsAlwaysAvailable) {
  sim::Simulator sim;
  DfxManager dfx(sim);
  EXPECT_TRUE(dfx.kernel_available(KernelKind::straw));
  EXPECT_TRUE(dfx.kernel_available(KernelKind::straw2));
  EXPECT_TRUE(dfx.kernel_available(KernelKind::rs_encoder));
  EXPECT_FALSE(dfx.kernel_available(KernelKind::uniform));
  EXPECT_EQ(dfx.state(), RpState::vacant);
}

TEST(Dfx, LoadRmMakesKernelAvailableAfterReconfigTime) {
  sim::Simulator sim;
  DfxManager dfx(sim);
  bool loaded = false;
  ASSERT_TRUE(dfx.load_rm(KernelKind::list, [&] { loaded = true; }).ok());
  EXPECT_EQ(dfx.state(), RpState::loading);
  EXPECT_FALSE(dfx.kernel_available(KernelKind::list));
  sim.run();
  EXPECT_TRUE(loaded);
  EXPECT_TRUE(dfx.kernel_available(KernelKind::list));
  // MCAP load of a 25 MiB partial bitstream at 400 MB/s: ~65 ms.
  EXPECT_GT(dfx.reconfig_time(), ms(40));
  EXPECT_LT(dfx.reconfig_time(), ms(120));
}

TEST(Dfx, SwappingRmReplacesPrevious) {
  sim::Simulator sim;
  DfxManager dfx(sim);
  ASSERT_TRUE(dfx.load_rm(KernelKind::list, [] {}).ok());
  sim.run();
  ASSERT_TRUE(dfx.load_rm(KernelKind::tree, [] {}).ok());
  sim.run();
  EXPECT_TRUE(dfx.kernel_available(KernelKind::tree));
  EXPECT_FALSE(dfx.kernel_available(KernelKind::list));
  EXPECT_EQ(dfx.stats().reconfigurations, 2u);
}

TEST(Dfx, ConcurrentLoadRejectedAsBusy) {
  sim::Simulator sim;
  DfxManager dfx(sim);
  ASSERT_TRUE(dfx.load_rm(KernelKind::list, [] {}).ok());
  EXPECT_EQ(dfx.load_rm(KernelKind::tree, [] {}).code(), Errc::busy);
  sim.run();
}

TEST(Dfx, StaticKernelLoadRejected) {
  sim::Simulator sim;
  DfxManager dfx(sim);
  EXPECT_EQ(dfx.load_rm(KernelKind::straw, [] {}).code(),
            Errc::invalid_argument);
}

TEST(Dfx, ReloadingActiveRmIsFreeNoOp) {
  sim::Simulator sim;
  DfxManager dfx(sim);
  ASSERT_TRUE(dfx.load_rm(KernelKind::uniform, [] {}).ok());
  sim.run();
  const auto before = dfx.stats().reconfigurations;
  bool done = false;
  ASSERT_TRUE(dfx.load_rm(KernelKind::uniform, [&] { done = true; }).ok());
  const Nanos t0 = sim.now();
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), t0) << "no MCAP traffic for the resident RM";
  EXPECT_EQ(dfx.stats().reconfigurations, before);
}

TEST(Dfx, PrVerifyReportsAllThreeRms) {
  sim::Simulator sim;
  DfxManager dfx(sim);
  auto report = dfx.pr_verify();
  ASSERT_EQ(report.size(), 3u);
  for (const auto& e : report) {
    EXPECT_TRUE(e.fits_rp) << kernel_name(e.kernel);
    // Table III: RM utilization of SLR0 is 14-18% LUTs.
    EXPECT_GT(e.rp_utilization.luts, 10.0);
    EXPECT_LT(e.rp_utilization.luts, 20.0);
  }
}

TEST(Dfx, RecommendationMatchesPaperGuidance) {
  EXPECT_EQ(DfxManager::recommend_rm(true, false, 32), KernelKind::uniform);
  EXPECT_EQ(DfxManager::recommend_rm(false, true, 32), KernelKind::list);
  EXPECT_EQ(DfxManager::recommend_rm(false, false, 500), KernelKind::tree);
}

TEST(TcpIp, ChecksumKnownVector) {
  // Segment digests are CRC32C; pin to the RFC 3720 all-zeros test vector.
  TcpIpOffload tcp;
  const std::vector<std::uint8_t> payload(32, 0x00);
  auto segs = tcp.segment(payload, 0);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].checksum, 0x8a9136aau);
}

TEST(TcpIp, SegmentReassembleRoundTrip) {
  TcpIpOffload tcp;
  Rng rng(5);
  std::vector<std::uint8_t> payload(100'000);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));
  auto segs = tcp.segment(payload, 1000);
  EXPECT_GT(segs.size(), 10u);
  auto out = tcp.reassemble(segs, 1000);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, payload);
}

TEST(TcpIp, CorruptedSegmentDetected) {
  TcpIpOffload tcp;
  std::vector<std::uint8_t> payload(5000, 0x42);
  auto segs = tcp.segment(payload, 0);
  segs[0].payload[10] ^= 0xff;
  EXPECT_FALSE(tcp.reassemble(segs, 0).ok());
}

TEST(TcpIp, SequenceGapDetected) {
  TcpIpOffload tcp;
  std::vector<std::uint8_t> payload(30'000, 7);
  auto segs = tcp.segment(payload, 0);
  ASSERT_GT(segs.size(), 2u);
  segs.erase(segs.begin() + 1);
  EXPECT_FALSE(tcp.reassemble(std::move(segs), 0).ok());
}

TEST(TcpIp, StandardMtuSegmentsSmaller) {
  TcpIpConfig cfg;
  cfg.max_frame_bytes = 1518;
  TcpIpOffload tcp(cfg);
  std::vector<std::uint8_t> payload(10'000, 1);
  auto segs = tcp.segment(payload, 0);
  for (const auto& s : segs) EXPECT_LE(s.payload.size(), 1518u - 54u);
  EXPECT_EQ(segs.size(), (10'000 + (1518 - 54) - 1) / (1518 - 54));
}

TEST(TcpIp, PacketLatencyAtCmacClock) {
  TcpIpOffload tcp;
  // 64B min packet: 42 header cycles + 1 beat = 43 cycles @ 260 MHz ~165ns.
  EXPECT_NEAR(static_cast<double>(tcp.packet_latency(64)), 43.0 / 260e6 * 1e9, 2.0);
  EXPECT_GT(tcp.message_latency(128 * 1024), tcp.message_latency(4096));
}

TEST(Power, ReproducesPaperScenarios) {
  PowerModel p;
  EXPECT_NEAR(p.full_load_no_pr(), 195.0, 3.0);
  EXPECT_NEAR(p.full_load_with_pr(KernelKind::uniform), 170.0, 3.0);
  EXPECT_LT(p.full_load_with_pr(KernelKind::list), p.full_load_no_pr());
}

TEST(Device, PlacementRequiresResidentKernel) {
  sim::Simulator sim;
  FpgaDevice dev(sim);
  EXPECT_TRUE(dev.placement_latency(KernelKind::straw2).ok());
  EXPECT_FALSE(dev.placement_latency(KernelKind::tree).ok())
      << "RM not loaded yet";
  ASSERT_TRUE(dev.dfx().load_rm(KernelKind::tree, [] {}).ok());
  sim.run();
  EXPECT_TRUE(dev.placement_latency(KernelKind::tree).ok());
  EXPECT_EQ(dev.kernel(KernelKind::tree).ops_executed(), 1u);
}

TEST(Device, StaticRegionFitsInTwoSlrs) {
  sim::Simulator sim;
  FpgaDevice dev(sim);
  const Resources used = dev.static_region_used();
  const Resources cap = U280::slr(1) + U280::slr(2);
  EXPECT_TRUE(cap.fits(used));
}

}  // namespace
}  // namespace dk::fpga
