// Tests for block-trace replay and the live SQ-poll thread.
#include <gtest/gtest.h>

#include <array>
#include <chrono>

#include "common/units.hpp"
#include "core/framework.hpp"
#include "uring/poller.hpp"
#include "uring/ramdisk.hpp"
#include "workload/replay.hpp"

namespace dk {
namespace {

TEST(TraceParse, RoundTrip) {
  const char* csv =
      "# a trace\n"
      "0,W,0,4096\n"
      "150,R,8192,4096\n"
      "300,W,4096,8192\n";
  auto ops = workload::parse_trace(csv);
  ASSERT_TRUE(ops.ok()) << ops.status().to_string();
  ASSERT_EQ(ops->size(), 3u);
  EXPECT_EQ((*ops)[0].at, 0);
  EXPECT_TRUE((*ops)[0].is_write);
  EXPECT_EQ((*ops)[1].at, us(150));
  EXPECT_FALSE((*ops)[1].is_write);
  EXPECT_EQ((*ops)[2].length, 8192u);

  auto reparsed = workload::parse_trace(workload::dump_trace(*ops));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), 3u);
  EXPECT_EQ((*reparsed)[2].offset, 4096u);
}

TEST(TraceParse, RejectsMalformedLines) {
  EXPECT_FALSE(workload::parse_trace("0,W,0\n").ok());
  EXPECT_FALSE(workload::parse_trace("0,X,0,4096\n").ok());
  EXPECT_FALSE(workload::parse_trace("abc,W,0,4096\n").ok());
}

TEST(TraceReplay, OpenLoopHonoursIssueTimes) {
  sim::Simulator sim;
  core::FrameworkConfig cfg;
  cfg.variant = core::VariantKind::delibak;
  cfg.image_size = 16 * MiB;
  core::Framework fw(sim, cfg);

  std::vector<workload::TraceOp> ops;
  for (int i = 0; i < 20; ++i)
    ops.push_back({us(500.0 * i), i % 2 == 0, 4096ull * i, 4096});
  auto r = workload::replay_trace(fw, ops, /*honour_timing=*/true);
  EXPECT_EQ(r.ops, 20u);
  EXPECT_EQ(r.errors, 0u);
  // Last op issues at 9.5 ms; makespan must cover that plus its latency.
  EXPECT_GT(r.makespan, us(9500));
  EXPECT_LT(r.makespan, us(9500) + ms(1));
}

TEST(TraceReplay, ClosedLoopRunsFasterThanOpenLoop) {
  auto run = [](bool honour) {
    sim::Simulator sim;
    core::FrameworkConfig cfg;
    cfg.variant = core::VariantKind::delibak;
    cfg.image_size = 16 * MiB;
    core::Framework fw(sim, cfg);
    std::vector<workload::TraceOp> ops;
    for (int i = 0; i < 50; ++i)
      ops.push_back({ms(2.0 * i), true, 4096ull * i, 4096});  // sparse trace
    return workload::replay_trace(fw, ops, honour).makespan;
  };
  EXPECT_LT(run(false), run(true) / 4)
      << "closed-loop compresses a sparse trace";
}

TEST(SqPollThread, DrivesRingWithoutEnterCalls) {
  uring::RamDisk disk(1 * MiB);
  uring::IoUring ring({.sq_entries = 64, .mode = uring::RingMode::kernel_polled},
                      disk);
  uring::SqPollThread poller({&ring});

  std::array<std::uint8_t, 512> buf{};
  constexpr int kOps = 200;
  int reaped = 0;
  std::array<uring::Cqe, 16> cqes;
  for (int i = 0; i < kOps; ++i) {
    while (!ring.prep_write(0, reinterpret_cast<std::uint64_t>(buf.data()),
                            buf.size(), (i % 128) * 512ull, i)
                .ok()) {
      reaped += ring.peek_cqes(cqes);  // SQ full: reap to make room
    }
    reaped += ring.peek_cqes(cqes);
  }
  // Wait for the poller to drain the tail.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (reaped < kOps && std::chrono::steady_clock::now() < deadline)
    reaped += ring.peek_cqes(cqes);
  poller.stop();

  EXPECT_EQ(reaped, kOps);
  EXPECT_EQ(ring.stats().enter_calls, 0u);
  EXPECT_GT(ring.stats().sq_poll_wakeups, 0u);
  EXPECT_GT(poller.polls(), 0u);
}

TEST(SqPollThread, NapsWhenIdle) {
  uring::RamDisk disk(4096);
  uring::IoUring ring({.sq_entries = 8, .mode = uring::RingMode::kernel_polled},
                      disk);
  uring::SqPollThread poller({&ring},
                             {.idle_spins = 8, .nap = std::chrono::microseconds(100)});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (poller.naps() == 0 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_GT(poller.naps(), 0u) << "idle poller must back off";
  poller.stop();
}

}  // namespace
}  // namespace dk
