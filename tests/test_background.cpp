// Tests for the time-charged background subsystem: deterministic scrub
// timelines, token-bucket budget accounting, paced recovery with the
// recovery_max_bps throttle, the station two-class scheme (charged
// background busy time, starvation-guard progress), the validator's
// background_leak rule, and the armed Framework's background.* metrics.
#include "rados/background.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "common/pipeline_validator.hpp"
#include "common/rng.hpp"
#include "core/framework.hpp"
#include "rados/client.hpp"
#include "workload/fio.hpp"

namespace dk::rados {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.below(256));
  return v;
}

/// Bare cluster with a replicated and an EC pool populated like the
/// recovery fixture, plus a background scheduler built per test.
class BackgroundFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(sim_);
    client_ = std::make_unique<RadosClient>(*cluster_);
    pool_ = cluster_->create_replicated_pool("rbd", 2);
    ec_pool_ = cluster_->create_ec_pool("ec", ec::Profile{4, 2});
    for (std::uint64_t oid = 0; oid < 30; ++oid) {
      client_->write(pool_, oid, 0, pattern(8192, oid),
                     WriteStrategy::primary_copy, [](Status) {});
    }
    for (std::uint64_t oid = 0; oid < 10; ++oid) {
      client_->write(ec_pool_, oid, 0, pattern(8192, 100 + oid),
                     WriteStrategy::client_fanout, [](Status) {});
    }
    sim_.run();
  }

  BackgroundScheduler& arm(BackgroundConfig config) {
    config.enabled = true;
    background_ =
        std::make_unique<BackgroundScheduler>(*cluster_, config);
    cluster_->set_background(background_.get());
    background_->start();
    return *background_;
  }

  Nanos total_bg_busy() const {
    Nanos sum = 0;
    for (std::size_t i = 0; i < cluster_->osd_count(); ++i)
      sum += cluster_->osd(static_cast<int>(i)).workers().bg_busy_time();
    return sum;
  }

  sim::Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RadosClient> client_;
  std::unique_ptr<BackgroundScheduler> background_;
  int pool_ = -1;
  int ec_pool_ = -1;
};

// --- deep scrub -------------------------------------------------------------

/// Full scrub run in a fresh environment; returns the chunk timeline.
std::vector<ScrubChunkRecord> scrub_timeline_run(std::uint64_t seed) {
  sim::Simulator sim;
  ClusterConfig cc;
  cc.seed = seed;
  Cluster cluster(sim, cc);
  RadosClient client(cluster);
  const int pool = cluster.create_replicated_pool("rbd", 2);
  for (std::uint64_t oid = 0; oid < 20; ++oid) {
    client.write(pool, oid, 0, pattern(8192, oid),
                 WriteStrategy::primary_copy, [](Status) {});
  }
  sim.run();

  BackgroundConfig bc;
  bc.enabled = true;
  bc.scrub_interval = ms(10);
  bc.horizon = ms(40);
  BackgroundScheduler background(cluster, bc);
  cluster.set_background(&background);
  background.start();
  sim.run();
  return background.scrub_timeline();
}

TEST(ScrubScheduler, SameSeedYieldsIdenticalTimeline) {
  const auto a = scrub_timeline_run(7);
  const auto b = scrub_timeline_run(7);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "scrub schedule must replay bit-exactly per seed";
}

TEST_F(BackgroundFixture, ScrubChargesStationTimeInBackgroundClass) {
  BackgroundConfig bc;
  bc.scrub_interval = ms(10);
  bc.horizon = ms(25);
  BackgroundScheduler& bg = arm(bc);
  sim_.run();

  EXPECT_GT(bg.scrub_passes(), 0u);
  EXPECT_GT(bg.scrub_bytes(), 0u);
  // The acceptance pin: scrub reads occupied OSD op-thread stations in the
  // background service class for real simulated time.
  EXPECT_GT(total_bg_busy(), 0);
  EXPECT_EQ(bg.scrub_errors(), 0u) << "healthy stores must verify clean";
}

TEST_F(BackgroundFixture, ScrubBudgetPacesChunksAndCountsWaits) {
  // 1 MB/s budget: an 8 kB chunk earns the next grant ~8.2 ms later, far
  // beyond the OSD service time, so pacing (not the station) dominates.
  BackgroundConfig bc;
  bc.scrub_interval = ms(10);
  bc.horizon = ms(15);
  bc.scrub_bps = 1.0e6;
  BackgroundScheduler& bg = arm(bc);
  sim_.run();

  EXPECT_GT(bg.throttle_waits(), 0u)
      << "an over-subscribed budget must delay chunks";
  // Per OSD, consecutive scheduled chunks respect the bucket spacing.
  const auto& timeline = bg.scrub_timeline();
  ASSERT_FALSE(timeline.empty());
  std::map<int, const ScrubChunkRecord*> last;
  for (const auto& rec : timeline) {
    auto it = last.find(rec.osd);
    if (it != last.end()) {
      const Nanos min_gap = transfer_time(it->second->bytes, bc.scrub_bps);
      EXPECT_GE(rec.at - it->second->at, min_gap)
          << "chunk on osd." << rec.osd << " outran its token bucket";
    }
    last[rec.osd] = &rec;
  }
}

TEST_F(BackgroundFixture, ScrubRepairsCorruptChunkFromVerifiedReplica) {
  // Integrity-armed cluster so scrub can convict a chunk by checksum.
  ClusterConfig cc;
  cc.integrity = true;
  cluster_ = std::make_unique<Cluster>(sim_, cc);
  client_ = std::make_unique<RadosClient>(*cluster_);
  client_->set_integrity(true);
  pool_ = cluster_->create_replicated_pool("rbd", 2);
  for (std::uint64_t oid = 0; oid < 8; ++oid) {
    client_->write(pool_, oid, 0, pattern(8192, oid),
                   WriteStrategy::primary_copy, [](Status) {});
  }
  sim_.run();

  // Flip stored bytes of one copy without refreshing its checksums.
  const auto acting = cluster_->acting_set(pool_, 3);
  ASSERT_GE(acting.size(), 2u);
  ObjectKey key{static_cast<std::uint32_t>(pool_), 3, -1};
  auto raw = cluster_->osd(acting[0]).store().raw_bytes(key);
  ASSERT_FALSE(raw.empty());
  for (std::size_t i = 100; i < 116; ++i) raw[i] ^= 0xff;

  BackgroundConfig bc;
  bc.scrub_interval = ms(10);
  bc.horizon = ms(25);
  BackgroundScheduler& bg = arm(bc);
  sim_.run();

  EXPECT_GT(bg.scrub_errors(), 0u) << "scrub missed the corrupt chunk";
  EXPECT_GT(bg.scrub_repairs(), 0u);
  const auto& store = cluster_->osd(acting[0]).store();
  EXPECT_TRUE(store.verify(key, 0, store.object_size(key)))
      << "repair must leave the copy verifying clean";
}

// --- paced recovery ---------------------------------------------------------

struct RecoveryOutcome {
  Nanos ttfr = 0;
  std::uint64_t moves = 0;
  std::uint64_t bytes = 0;
  std::uint64_t waits = 0;
};

/// Crash-free mark-out of one OSD under a paced scheduler; returns the
/// recovery episode's outcome once the cluster drained.
RecoveryOutcome paced_recovery_run(double recovery_max_bps, Nanos pace_cap) {
  sim::Simulator sim;
  Cluster cluster(sim);
  RadosClient client(cluster);
  const int pool = cluster.create_replicated_pool("rbd", 2);
  const int ec_pool = cluster.create_ec_pool("ec", ec::Profile{4, 2});
  for (std::uint64_t oid = 0; oid < 30; ++oid) {
    client.write(pool, oid, 0, pattern(8192, oid),
                 WriteStrategy::primary_copy, [](Status) {});
  }
  for (std::uint64_t oid = 0; oid < 10; ++oid) {
    client.write(ec_pool, oid, 0, pattern(8192, 100 + oid),
                 WriteStrategy::client_fanout, [](Status) {});
  }
  sim.run();

  BackgroundConfig bc;
  bc.enabled = true;
  bc.scrub_interval = 0;  // recovery-only: isolate the throttle
  bc.recovery_max_bps = recovery_max_bps;
  bc.pace_cap = pace_cap;
  BackgroundScheduler background(cluster, bc);
  cluster.set_background(&background);
  background.start();

  cluster.set_osd_down(5, true);
  cluster.set_osd_out(5, true);  // CRUSH reweight -> paced backfill
  sim.run();

  RecoveryOutcome out;
  out.ttfr = background.time_to_full_redundancy();
  out.moves = background.moves_completed();
  out.bytes = background.backfill_bytes();
  out.waits = background.throttle_waits();

  // Full redundancy restored: a fresh plan over both pools finds nothing.
  RecoveryManager check(cluster);
  EXPECT_TRUE(check.plan(pool).moves.empty());
  EXPECT_TRUE(check.plan(ec_pool).moves.empty());
  return out;
}

TEST(PacedRecovery, MarkOutTriggersPacedBackfillToFullRedundancy) {
  const RecoveryOutcome out = paced_recovery_run(200.0e6, ms(5));
  EXPECT_GT(out.moves, 0u);
  EXPECT_GT(out.bytes, 0u);
  EXPECT_GT(out.ttfr, 0);
}

TEST(PacedRecovery, TighterThrottleTradesTimeToFullRedundancy) {
  // Generous pace_cap so the token bucket (not the cap) sets the pace.
  const RecoveryOutcome slow = paced_recovery_run(10.0e6, ms(100));
  const RecoveryOutcome fast = paced_recovery_run(400.0e6, ms(100));
  ASSERT_GT(slow.moves, 0u);
  EXPECT_EQ(slow.moves, fast.moves) << "same placement delta both runs";
  EXPECT_GT(slow.waits, 0u);
  EXPECT_GT(slow.ttfr, fast.ttfr)
      << "a tighter recovery_max_bps must stretch time-to-full-redundancy";
}

TEST(PacedRecovery, PaceCapBoundsStarvationUnderTinyBudget) {
  // A budget this small (100 kB/s for ~8 kB moves) would park recovery for
  // seconds; the pace cap clips each grant wait, so backfill still lands.
  const RecoveryOutcome out = paced_recovery_run(1.0e5, ms(1));
  EXPECT_GT(out.moves, 0u);
  EXPECT_GT(out.waits, 0u);
  // Every move waited at most pace_cap for its grant; with the plans run
  // sequentially per pool the episode stays near moves * cap, not
  // bytes / bps (which would be ~100x longer).
  EXPECT_LT(out.ttfr, static_cast<Nanos>(out.moves + 16) * ms(1) + ms(50));
}

// --- two-class station ------------------------------------------------------

TEST(TwoClassStation, BackgroundYieldsToClientsButIsNotStarved) {
  sim::Simulator sim;
  sim::FifoServer server(sim, 1, "station");
  server.set_starve_limit(2);

  std::vector<int> order;
  // One background job waiting behind a stream of client jobs: the guard
  // admits it after two consecutive client dispatches bypass it.
  server.submit(us(10), [&] { order.push_back(0); });
  server.submit_background(us(10), [&] { order.push_back(100); });
  for (int i = 1; i <= 4; ++i)
    server.submit(us(10), [&, i] { order.push_back(i); });
  sim.run();

  ASSERT_EQ(order.size(), 6u);
  // Clients 1 and 2 preempt the waiting background job; the starve limit
  // then admits it before clients 3 and 4.
  const std::vector<int> expected{0, 1, 2, 100, 3, 4};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(server.preemptions(), 2u);
  EXPECT_EQ(server.bg_busy_time(), us(10));
}

// --- validator: background_leak ---------------------------------------------

TEST(BackgroundLeak, UnresolvedBackgroundWorkFailsQuiescence) {
  PipelineValidator validator;
  validator.on_background_scheduled();
  validator.on_background_scheduled();
  validator.on_background_resolved();
  EXPECT_GT(validator.verify_quiescent(), 0u);
  EXPECT_GE(validator.violations(PipelineValidator::Violation::background_leak),
            1u);
}

TEST(BackgroundLeak, BalancedWorkIsQuiescent) {
  PipelineValidator validator;
  validator.on_background_scheduled();
  validator.on_background_resolved();
  EXPECT_EQ(validator.verify_quiescent(), 0u);
  EXPECT_EQ(validator.violations(PipelineValidator::Violation::background_leak),
            0u);
}

// --- armed Framework: budget accounting under bursty client load ------------

TEST(FrameworkBackground, ArmedRunChargesAndReportsBackgroundActivity) {
  core::FrameworkConfig cfg;
  cfg.variant = core::VariantKind::delibak;
  cfg.image_size = 16 * MiB;
  cfg.background.enabled = true;
  cfg.background.scrub_interval = ms(5);
  cfg.background.horizon = ms(30);
  cfg.background.scrub_bps = 20.0e6;  // tight budget under client load

  sim::Simulator sim;
  core::Framework fw(sim, cfg);
  ASSERT_NE(fw.background(), nullptr);

  workload::FioEngine engine(fw);
  workload::FioJobSpec spec;
  spec.rw = workload::RwMode::rand_write;
  spec.bs = 4096;
  spec.iodepth = 32;
  spec.runtime = ms(10);
  spec.ramp = ms(1);
  spec.seed = 11;
  const workload::FioResult result = engine.run(spec);
  sim.run();

  EXPECT_GT(result.ops, 0u);
  // Background activity is real (charged) and reported via metrics.
  EXPECT_GT(fw.background()->scrub_bytes(), 0u);
  EXPECT_GT(fw.background()->throttle_waits(), 0u)
      << "bursty client load plus a tight budget must hit the throttle";
  const Counter* scrubbed = fw.metrics().find_counter("background.scrub_bytes");
  const Counter* waits =
      fw.metrics().find_counter("background.budget_throttle_waits");
  const Counter* preempt =
      fw.metrics().find_counter("background.client_preemptions");
  ASSERT_TRUE(scrubbed && waits && preempt);
  EXPECT_EQ(scrubbed->value(), fw.background()->scrub_bytes());
  EXPECT_GT(waits->value(), 0u);
  Nanos bg_busy = 0;
  for (std::size_t i = 0; i < fw.cluster().osd_count(); ++i)
    bg_busy += fw.cluster().osd(static_cast<int>(i)).workers().bg_busy_time();
  EXPECT_GT(bg_busy, 0);
  // Every scheduled chunk resolved: the background_leak rule holds.
  EXPECT_EQ(fw.validator().verify_quiescent(), 0u);
}

}  // namespace
}  // namespace dk::rados
